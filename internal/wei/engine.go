package wei

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"colormatch/internal/sim"
)

// Client dispatches commands to modules. The engine is transport-agnostic:
// the same application code runs whether modules live in-process or behind
// HTTP servers ("workflow steps are translated into commands sent to
// computers connected to devices").
type Client interface {
	Act(ctx context.Context, module, action string, args Args) (Result, error)
	State(ctx context.Context, module string) (ModuleState, error)
	About(ctx context.Context, module string) (ModuleInfo, error)
}

// StepRecord is the timing record of one executed step. For each workflow
// run "a file is created that details the step names run, their start time,
// end time and total duration" — RunRecord.WriteFile produces it.
type StepRecord struct {
	Name     string        `json:"name"`
	Module   string        `json:"module"`
	Action   string        `json:"action"`
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	Duration time.Duration `json:"duration"`
	// QueueWait is the total time this step's attempts spent waiting for the
	// target module's lease (always zero without a Reservations layer). It is
	// included in Duration: a step's wall clock runs while it queues.
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	Attempts  int           `json:"attempts"`
	Err       string        `json:"err,omitempty"`

	// Result carries the action's payload to the application (e.g. the
	// camera frame). It is not serialized into timing files.
	Result Result `json:"-"`
}

// RunRecord is the record of one workflow run.
type RunRecord struct {
	Workflow string        `json:"workflow"`
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	Duration time.Duration `json:"duration"`
	Steps    []StepRecord  `json:"steps"`
}

// sanitizeFilename maps a workflow name onto a safe filename fragment:
// every byte outside [A-Za-z0-9._-] becomes '_', so a name containing a path
// separator (or anything else the filesystem dislikes) cannot escape the
// record directory. An empty name becomes "workflow".
func sanitizeFilename(name string) string {
	if name == "" {
		return "workflow"
	}
	out := []byte(name)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9',
			b == '.', b == '_', b == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// WriteFile saves the run record as JSON in dir, named after the (sanitized)
// workflow name and its start time. It returns the file path.
func (r *RunRecord) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("wei: run record: %w", err)
	}
	name := fmt.Sprintf("%s_%s.json", sanitizeFilename(r.Workflow), r.Start.UTC().Format("20060102T150405.000000000"))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("wei: run record: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("wei: run record: %w", err)
	}
	return path, nil
}

// Engine executes workflows against a workcell through a Client, with
// command-level fault injection and bounded retries. The paper observes that
// "most failures occur during reception and processing of commands"; the
// engine's retry loop is what turns those transient failures into the
// completed-commands counts the CCWH metric reports.
type Engine struct {
	Client Client
	Clock  sim.Clock
	Log    *EventLog
	Faults *sim.Injector // nil injects nothing

	// Reservations, when set, makes the engine lease the target module
	// around every command dispatch, so concurrent RunWorkflow calls (on
	// this engine or on WithLog forks sharing it) pipeline through the
	// workcell without ever occupying one instrument twice at the same
	// time. Nil runs steps unleased — the single-workflow behavior.
	Reservations *Reservations

	// MaxAttempts bounds command attempts per step (default 3).
	MaxAttempts int
	// RetryDelay is the pause between attempts on the experiment clock
	// (default 5s: an operator-less automatic recovery).
	RetryDelay time.Duration
	// RecordDir, when set, receives a timing file per workflow run.
	RecordDir string
}

// NewEngine returns an engine with default retry policy.
func NewEngine(client Client, clock sim.Clock, log *EventLog) *Engine {
	return &Engine{
		Client:      client,
		Clock:       clock,
		Log:         log,
		MaxAttempts: 3,
		RetryDelay:  5 * time.Second,
	}
}

// WithLog returns a copy of the engine bound to log, sharing the client,
// clock, fault injector, module reservations and retry policy (shared
// reservations are what keep WithLog forks mutually exclusive on the
// workcell's instruments). Pools keep one engine per workcell
// and fork a fresh event log per campaign, so each run's metrics stay
// separable while the (possibly expensive) transport is reused.
func (e *Engine) WithLog(log *EventLog) *Engine {
	ne := *e
	ne.Log = log
	return &ne
}

// ErrStepFailed reports a step that exhausted its attempts.
var ErrStepFailed = errors.New("wei: step failed after retries")

// Preflight verifies that every step of wf targets a module the client can
// reach and an action that module exposes, without running anything. It is
// the dynamic counterpart of WorkflowSpec.Validate (which checks a workcell
// file): run it once before a long experiment to fail fast on typos.
func (e *Engine) Preflight(ctx context.Context, wf *WorkflowSpec) error {
	about := map[string]ModuleInfo{}
	for _, step := range wf.Steps {
		info, ok := about[step.Module]
		if !ok {
			var err error
			info, err = e.Client.About(ctx, step.Module)
			if err != nil {
				return fmt.Errorf("wei: preflight %q step %q: %w", wf.Name, step.Name, err)
			}
			about[step.Module] = info
		}
		found := false
		for _, a := range info.Actions {
			if a.Name == step.Action {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("wei: preflight %q step %q: module %q has no action %q",
				wf.Name, step.Name, step.Module, step.Action)
		}
	}
	return nil
}

// RunWorkflow executes every step of wf in order, substituting params into
// step args. It stops at the first step that fails all attempts, and checks
// ctx between steps so a canceled campaign drains at the next step boundary
// instead of running the workflow to completion.
func (e *Engine) RunWorkflow(ctx context.Context, wf *WorkflowSpec, params map[string]any) (*RunRecord, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rec := &RunRecord{Workflow: wf.Name, Start: e.Clock.Now()}
	e.Log.Append(Event{Kind: EvWorkflowStart, Workflow: wf.Name})
	var runErr error
	for _, step := range wf.Steps {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		sr, err := e.runStep(ctx, wf.Name, step, params)
		rec.Steps = append(rec.Steps, sr)
		if err != nil {
			runErr = err
			break
		}
	}
	rec.End = e.Clock.Now()
	rec.Duration = rec.End.Sub(rec.Start)
	e.Log.Append(Event{Kind: EvWorkflowEnd, Workflow: wf.Name, Duration: rec.Duration})
	if e.RecordDir != "" {
		if _, err := rec.WriteFile(e.RecordDir); err != nil && runErr == nil {
			runErr = err
		}
	}
	return rec, runErr
}

// runStep executes one step with retries.
func (e *Engine) runStep(ctx context.Context, wfName string, step Step, params map[string]any) (StepRecord, error) {
	sr := StepRecord{
		Name:   step.Name,
		Module: step.Module,
		Action: step.Action,
		Start:  e.Clock.Now(),
	}
	e.Log.Append(Event{Kind: EvStepStart, Workflow: wfName, Step: step.Name, Module: step.Module, Action: step.Action})

	args, err := SubstituteArgs(step.Args, params)
	if err != nil {
		sr.Err = err.Error()
		sr.End = e.Clock.Now()
		e.Log.Append(Event{Kind: EvStepEnd, Workflow: wfName, Step: step.Name,
			Module: step.Module, Action: step.Action, Err: sr.Err})
		return sr, err
	}

	maxAttempts := e.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		// A canceled campaign must not burn further attempts (or their retry
		// sleeps, which inflate virtual-time metrics): stop before sending.
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		sr.Attempts = attempt
		// Lease the module for this attempt. The wait happens before the
		// command is "sent": a queued command sits at the engine, exactly
		// like a command queued at a busy device computer, and EvCommandSent
		// through EvCommandDone/Failed bound the exclusive occupancy window.
		var qw time.Duration
		if e.Reservations != nil {
			qw = e.Reservations.Acquire(step.Module)
			sr.QueueWait += qw
		}
		e.Log.Append(Event{Kind: EvCommandSent, Workflow: wfName, Step: step.Name,
			Module: step.Module, Action: step.Action, Attempt: attempt, QueueWait: qw})
		cmdStart := e.Clock.Now()

		res, cmdErr := e.dispatch(ctx, step, args)

		dur := e.Clock.Now().Sub(cmdStart)
		if cmdErr == nil {
			sr.Result = res
			e.Log.Append(Event{Kind: EvCommandDone, Workflow: wfName, Step: step.Name,
				Module: step.Module, Action: step.Action, Attempt: attempt, Duration: dur})
			if e.Reservations != nil {
				e.Reservations.Release(step.Module)
			}
			sr.End = e.Clock.Now()
			sr.Duration = sr.End.Sub(sr.Start)
			e.Log.Append(Event{Kind: EvStepEnd, Workflow: wfName, Step: step.Name,
				Module: step.Module, Action: step.Action, Duration: sr.Duration,
				QueueWait: sr.QueueWait})
			return sr, nil
		}
		lastErr = cmdErr
		e.Log.Append(Event{Kind: EvCommandFailed, Workflow: wfName, Step: step.Name,
			Module: step.Module, Action: step.Action, Attempt: attempt, Duration: dur, Err: cmdErr.Error()})
		if e.Reservations != nil {
			// The module frees between attempts: a retry re-queues behind
			// whoever arrived during the failed attempt, and the retry delay
			// below is spent unleased.
			e.Reservations.Release(step.Module)
		}
		// Only transient failures are worth another attempt. A permanent
		// error (canceled context, unknown module or action) or a dead
		// workcell fails the step immediately — retrying would only delay
		// cancellation and pad the event log with doomed attempts.
		if Classify(cmdErr) != ClassRetryable {
			break
		}
		if attempt < maxAttempts && e.RetryDelay > 0 {
			e.Clock.Sleep(e.RetryDelay)
		}
	}
	sr.Err = lastErr.Error()
	sr.End = e.Clock.Now()
	sr.Duration = sr.End.Sub(sr.Start)
	e.Log.Append(Event{Kind: EvStepEnd, Workflow: wfName, Step: step.Name,
		Module: step.Module, Action: step.Action, Duration: sr.Duration,
		QueueWait: sr.QueueWait, Err: sr.Err})
	return sr, fmt.Errorf("%w: %s.%s: %w", ErrStepFailed, step.Module, step.Action, lastErr)
}

// dispatch sends one command attempt, applying injected faults.
//
// Fault semantics: a receive fault drops the command before the instrument
// sees it; a process fault aborts it at the instrument without effect; a
// report fault runs the action but loses the success report, so the control
// system observes a failure even though the work happened (exactly the
// hazard the paper's CCWH metric probes).
func (e *Engine) dispatch(ctx context.Context, step Step, args Args) (Result, error) {
	if f := e.Faults.Check(step.Module, step.Action); f != nil {
		switch f.Kind {
		case sim.FaultReport:
			if _, err := e.Client.Act(ctx, step.Module, step.Action, args); err != nil {
				return nil, err
			}
			return nil, f
		default:
			// Receive and process faults: the action does not run. Simulate
			// the command timeout an operator would observe.
			e.Clock.Sleep(2 * time.Second)
			return nil, f
		}
	}
	return e.Client.Act(ctx, step.Module, step.Action, args)
}
