package wei

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"colormatch/internal/yamlite"
)

const sampleWorkflow = `
name: cp_wf_mix_colors
steps:
  - name: move_to_ot2
    module: pf400
    action: transfer
    args:
      source: camera
      target: ot2.deck
  - name: mix
    module: ot2
    action: run_protocol
    args:
      protocol: mix_colors
      wells: $wells
  - module: camera
    action: take_picture
`

const sampleWorkcell = `
name: rpl_workcell
locations: [camera, ot2.deck, sciclops.exchange, trash]
modules:
  - name: sciclops
    type: plate_crane
  - name: pf400
    type: manipulator
  - name: ot2
    type: liquid_handler
    config:
      reservoir_capacity: 25000.0
  - name: barty
    type: liquid_replenisher
  - name: camera
    type: camera
`

func TestParseWorkflow(t *testing.T) {
	wf, err := ParseWorkflow([]byte(sampleWorkflow))
	if err != nil {
		t.Fatal(err)
	}
	if wf.Name != "cp_wf_mix_colors" || len(wf.Steps) != 3 {
		t.Fatalf("wf = %+v", wf)
	}
	if wf.Steps[0].Name != "move_to_ot2" || wf.Steps[0].Module != "pf400" {
		t.Fatalf("step0 = %+v", wf.Steps[0])
	}
	// Default step name is module.action.
	if wf.Steps[2].Name != "camera.take_picture" {
		t.Fatalf("step2 name = %q", wf.Steps[2].Name)
	}
	if wf.Steps[1].Args["wells"] != "$wells" {
		t.Fatalf("step1 args = %#v", wf.Steps[1].Args)
	}
}

func TestParseWorkflowErrors(t *testing.T) {
	bad := []string{
		"",                                 // empty
		"steps:\n  - module: a\n",          // missing name
		"name: x\n",                        // missing steps
		"name: x\nsteps: []\n",             // empty steps
		"name: x\nsteps:\n  - action: y\n", // step missing module
		"name: x\nsteps:\n  - module: y\n", // step missing action
	}
	for _, src := range bad {
		if _, err := ParseWorkflow([]byte(src)); err == nil {
			t.Errorf("ParseWorkflow(%q) succeeded", src)
		}
	}
}

func TestParseWorkcell(t *testing.T) {
	wc, err := ParseWorkcell([]byte(sampleWorkcell))
	if err != nil {
		t.Fatal(err)
	}
	if wc.Name != "rpl_workcell" || len(wc.Modules) != 5 {
		t.Fatalf("wc = %+v", wc)
	}
	if len(wc.Locations) != 4 {
		t.Fatalf("locations = %v", wc.Locations)
	}
	ot2, ok := wc.Module("ot2")
	if !ok || ot2.Type != "liquid_handler" || ot2.Config["reservoir_capacity"] != 25000.0 {
		t.Fatalf("ot2 = %+v", ot2)
	}
	if got := wc.ModulesOfType("manipulator"); len(got) != 1 || got[0] != "pf400" {
		t.Fatalf("ModulesOfType = %v", got)
	}
	if _, ok := wc.Module("nope"); ok {
		t.Fatal("found nonexistent module")
	}
}

func TestParseWorkcellErrors(t *testing.T) {
	bad := []string{
		"",
		"name: x\n", // no modules
		"name: x\nmodules: []\n",
		"name: x\nmodules:\n  - name: a\n", // missing type
		"name: x\nmodules:\n  - name: a\n    type: t\n  - name: a\n    type: t\n", // dup
	}
	for _, src := range bad {
		if _, err := ParseWorkcell([]byte(src)); err == nil {
			t.Errorf("ParseWorkcell(%q) succeeded", src)
		}
	}
}

func TestValidateWorkflowAgainstWorkcell(t *testing.T) {
	wf, _ := ParseWorkflow([]byte(sampleWorkflow))
	wc, _ := ParseWorkcell([]byte(sampleWorkcell))
	if err := wf.Validate(wc); err != nil {
		t.Fatal(err)
	}
	bad := wf.Retarget("ot2", "ot2_b")
	if err := bad.Validate(wc); err == nil {
		t.Fatal("validation passed for unknown module")
	}
}

func TestRetarget(t *testing.T) {
	wf, _ := ParseWorkflow([]byte(sampleWorkflow))
	re := wf.Retarget("ot2", "ot2_b")
	if re.Steps[1].Module != "ot2_b" {
		t.Fatalf("retargeted step = %+v", re.Steps[1])
	}
	// Original untouched.
	if wf.Steps[1].Module != "ot2" {
		t.Fatal("Retarget mutated original")
	}
}

func TestSubstituteArgs(t *testing.T) {
	args := yamlite.Map{
		"protocol": "mix",
		"wells":    "$wells",
		"nested":   yamlite.Map{"v": "$vol", "keep": int64(2)},
		"list":     yamlite.List{"$vol", "x"},
	}
	params := map[string]any{
		"wells": []any{"A1", "A2"},
		"vol":   275.0,
	}
	got, err := SubstituteArgs(args, params)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"protocol": "mix",
		"wells":    []any{"A1", "A2"},
		"nested":   map[string]any{"v": 275.0, "keep": int64(2)},
		"list":     []any{275.0, "x"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v", got)
	}
}

func TestSubstituteArgsUnresolved(t *testing.T) {
	if _, err := SubstituteArgs(yamlite.Map{"a": "$missing"}, nil); err == nil {
		t.Fatal("unresolved parameter accepted")
	}
}

func TestSubstituteArgsNil(t *testing.T) {
	got, err := SubstituteArgs(nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %#v, %v", got, err)
	}
}

func TestWorkflowMarshalRoundTrip(t *testing.T) {
	wf, _ := ParseWorkflow([]byte(sampleWorkflow))
	data, err := wf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseWorkflow(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(wf, back) {
		t.Fatalf("round trip mismatch:\n%#v\n%#v", wf, back)
	}
}

func TestWorkcellMarshalRoundTrip(t *testing.T) {
	wc, _ := ParseWorkcell([]byte(sampleWorkcell))
	data, err := wc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseWorkcell(data)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(wc, back) {
		t.Fatalf("round trip mismatch:\n%#v\n%#v", wc, back)
	}
}

func TestLoadFromFiles(t *testing.T) {
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "wf.yaml")
	wcPath := filepath.Join(dir, "wc.yaml")
	if err := os.WriteFile(wfPath, []byte(sampleWorkflow), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wcPath, []byte(sampleWorkcell), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkflow(wfPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkcell(wcPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkflow(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Fatal("missing file loaded")
	}
	if _, err := LoadWorkcell(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Fatal("missing file loaded")
	}
}
