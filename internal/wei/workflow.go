package wei

import (
	"fmt"
	"os"
	"strings"

	"colormatch/internal/yamlite"
)

// Step is one workflow step: an action performed on a module.
type Step struct {
	Name   string
	Module string
	Action string
	Args   yamlite.Map
}

// WorkflowSpec is a declarative workflow: "Users can specify, again using a
// declarative notation, workflows that perform sets of actions on modules."
type WorkflowSpec struct {
	Name  string
	Steps []Step
}

// ParseWorkflow decodes a workflow YAML document.
func ParseWorkflow(data []byte) (*WorkflowSpec, error) {
	doc, err := yamlite.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("wei: workflow: %w", err)
	}
	root, err := yamlite.AsMap(doc)
	if err != nil {
		return nil, fmt.Errorf("wei: workflow: %w", err)
	}
	name, err := yamlite.Str(root, "name")
	if err != nil {
		return nil, fmt.Errorf("wei: workflow: %w", err)
	}
	steps, err := yamlite.SubList(root, "steps")
	if err != nil {
		return nil, fmt.Errorf("wei: workflow %q: %w", name, err)
	}
	spec := &WorkflowSpec{Name: name}
	for i, s := range steps {
		sm, err := yamlite.AsMap(s)
		if err != nil {
			return nil, fmt.Errorf("wei: workflow %q step %d: %w", name, i, err)
		}
		module, err := yamlite.Str(sm, "module")
		if err != nil {
			return nil, fmt.Errorf("wei: workflow %q step %d: %w", name, i, err)
		}
		action, err := yamlite.Str(sm, "action")
		if err != nil {
			return nil, fmt.Errorf("wei: workflow %q step %d: %w", name, i, err)
		}
		stepName, err := yamlite.StrOr(sm, "name", fmt.Sprintf("%s.%s", module, action))
		if err != nil {
			return nil, fmt.Errorf("wei: workflow %q step %d: %w", name, i, err)
		}
		st := Step{Name: stepName, Module: module, Action: action}
		if argsV, ok := sm["args"]; ok && argsV != nil {
			am, err := yamlite.AsMap(argsV)
			if err != nil {
				return nil, fmt.Errorf("wei: workflow %q step %q args: %w", name, stepName, err)
			}
			st.Args = am
		}
		spec.Steps = append(spec.Steps, st)
	}
	if len(spec.Steps) == 0 {
		return nil, fmt.Errorf("wei: workflow %q has no steps", name)
	}
	return spec, nil
}

// LoadWorkflow reads and parses a workflow YAML file.
func LoadWorkflow(path string) (*WorkflowSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wei: workflow: %w", err)
	}
	return ParseWorkflow(data)
}

// Validate checks that every step's module exists in the workcell.
// Action-level validation happens at dispatch (modules own their actions).
func (w *WorkflowSpec) Validate(wc *WorkcellSpec) error {
	for _, s := range w.Steps {
		if _, ok := wc.Module(s.Module); !ok {
			return fmt.Errorf("wei: workflow %q step %q targets unknown module %q",
				w.Name, s.Name, s.Module)
		}
	}
	return nil
}

// Retarget returns a copy of the workflow with steps on module `from`
// redirected to module `to`. It is how an application reuses a workflow on a
// second, compatible instrument (e.g. a second OT-2).
func (w *WorkflowSpec) Retarget(from, to string) *WorkflowSpec {
	out := &WorkflowSpec{Name: w.Name}
	for _, s := range w.Steps {
		if s.Module == from {
			s.Module = to
		}
		out.Steps = append(out.Steps, s)
	}
	return out
}

// SubstituteArgs resolves "$param" placeholders in step args against the
// run parameters. Unresolved placeholders are an error, so workflows cannot
// silently run with missing inputs.
func SubstituteArgs(args yamlite.Map, params map[string]any) (Args, error) {
	if args == nil {
		return Args{}, nil
	}
	out, err := substituteValue(args, params)
	if err != nil {
		return nil, err
	}
	return out.(map[string]any), nil
}

func substituteValue(v any, params map[string]any) (any, error) {
	switch val := v.(type) {
	case string:
		if strings.HasPrefix(val, "$") {
			key := val[1:]
			p, ok := params[key]
			if !ok {
				return nil, fmt.Errorf("wei: unresolved workflow parameter %q", val)
			}
			return p, nil
		}
		return val, nil
	case yamlite.Map:
		out := make(map[string]any, len(val))
		for k, item := range val {
			sub, err := substituteValue(item, params)
			if err != nil {
				return nil, err
			}
			out[k] = sub
		}
		return out, nil
	case yamlite.List:
		out := make([]any, len(val))
		for i, item := range val {
			sub, err := substituteValue(item, params)
			if err != nil {
				return nil, err
			}
			out[i] = sub
		}
		return out, nil
	default:
		return v, nil
	}
}

// Marshal re-encodes the workflow as YAML.
func (w *WorkflowSpec) Marshal() ([]byte, error) {
	steps := yamlite.List{}
	for _, s := range w.Steps {
		sm := yamlite.Map{"name": s.Name, "module": s.Module, "action": s.Action}
		if len(s.Args) > 0 {
			sm["args"] = s.Args
		}
		steps = append(steps, sm)
	}
	return yamlite.Marshal(yamlite.Map{"name": w.Name, "steps": steps})
}
