package wei

import (
	"context"
	"testing"
	"time"

	"colormatch/internal/sim"
)

// BenchmarkEngineWorkflow measures the engine's per-workflow overhead
// (dispatch, events, records) with instant module actions.
func BenchmarkEngineWorkflow(b *testing.B) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	m := NewBase("dev", "t", "")
	m.Register(ActionInfo{Name: "noop"}, func(ctx context.Context, args Args) (Result, error) {
		return Result{"ok": true}, nil
	})
	reg.Add(m)
	eng := NewEngine(reg, clock, NewEventLog(clock))
	wf := &WorkflowSpec{Name: "bench", Steps: []Step{
		{Name: "a", Module: "dev", Action: "noop"},
		{Name: "b", Module: "dev", Action: "noop"},
		{Name: "c", Module: "dev", Action: "noop"},
	}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunWorkflow(ctx, wf, nil); err != nil {
			b.Fatal(err)
		}
	}
	_ = time.Second
}

// BenchmarkParseWorkflow measures the YAML path of workflow loading.
func BenchmarkParseWorkflow(b *testing.B) {
	src := []byte(sampleWorkflow)
	for i := 0; i < b.N; i++ {
		if _, err := ParseWorkflow(src); err != nil {
			b.Fatal(err)
		}
	}
}
