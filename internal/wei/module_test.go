package wei

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// fakeModule is a test module with a scriptable action.
func fakeModule(name string, fail *int) *Base {
	b := NewBase(name, "test_device", "a fake device")
	b.Register(ActionInfo{Name: "ping", Description: "reply"}, func(ctx context.Context, args Args) (Result, error) {
		if fail != nil && *fail > 0 {
			*fail--
			return nil, errors.New("transient device error")
		}
		out := Result{"pong": true}
		if v, ok := args["echo"]; ok {
			out["echo"] = v
		}
		return out, nil
	})
	b.Register(ActionInfo{Name: "boom"}, func(ctx context.Context, args Args) (Result, error) {
		return nil, errors.New("kaboom")
	})
	return b
}

func TestBaseActDispatch(t *testing.T) {
	m := fakeModule("dev1", nil)
	res, err := m.Act(context.Background(), "ping", Args{"echo": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if res["pong"] != true || res["echo"] != "hi" {
		t.Fatalf("result = %#v", res)
	}
	if m.State() != StateReady {
		t.Fatalf("state after success = %v", m.State())
	}
}

func TestBaseUnknownAction(t *testing.T) {
	m := fakeModule("dev1", nil)
	_, err := m.Act(context.Background(), "nope", nil)
	var ua *ErrUnknownAction
	if !errors.As(err, &ua) {
		t.Fatalf("err = %v", err)
	}
	if ua.Module != "dev1" || ua.Action != "nope" {
		t.Fatalf("fields = %+v", ua)
	}
}

func TestBaseErrorState(t *testing.T) {
	m := fakeModule("dev1", nil)
	if _, err := m.Act(context.Background(), "boom", nil); err == nil {
		t.Fatal("boom succeeded")
	}
	if m.State() != StateError {
		t.Fatalf("state after failure = %v", m.State())
	}
	m.Reset()
	if m.State() != StateReady {
		t.Fatalf("state after reset = %v", m.State())
	}
}

func TestBaseAbout(t *testing.T) {
	m := fakeModule("dev1", nil)
	info := m.About()
	if info.Name != "dev1" || info.Type != "test_device" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Actions) != 2 || info.Actions[0].Name != "boom" || info.Actions[1].Name != "ping" {
		t.Fatalf("actions not sorted: %+v", info.Actions)
	}
}

func TestBaseDuplicateActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate action")
		}
	}()
	m := fakeModule("dev1", nil)
	m.Register(ActionInfo{Name: "ping"}, nil)
}

func TestRegistryClient(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("a", nil))
	reg.Add(fakeModule("b", nil))
	ctx := context.Background()
	if _, err := reg.Act(ctx, "a", "ping", nil); err != nil {
		t.Fatal(err)
	}
	st, err := reg.State(ctx, "b")
	if err != nil || st != StateReady {
		t.Fatalf("State = %v, %v", st, err)
	}
	info, err := reg.About(ctx, "a")
	if err != nil || info.Name != "a" {
		t.Fatalf("About = %+v, %v", info, err)
	}
	var nm *ErrNoModule
	if _, err := reg.Act(ctx, "zz", "ping", nil); !errors.As(err, &nm) {
		t.Fatalf("unknown module err = %v", err)
	}
	if len(reg.Names()) != 2 {
		t.Fatalf("Names = %v", reg.Names())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate module")
		}
	}()
	reg := NewRegistry()
	reg.Add(fakeModule("a", nil))
	reg.Add(fakeModule("a", nil))
}

func TestBaseConcurrentActs(t *testing.T) {
	m := fakeModule("dev1", nil)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			_, err := m.Act(context.Background(), "ping", Args{"echo": fmt.Sprint(i)})
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
