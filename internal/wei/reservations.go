package wei

import (
	"sync"
	"time"

	"colormatch/internal/sim"
)

// Reservations serializes module occupancy across concurrent workflows on
// one workcell. Each module name maps to a lease; a step acquires the lease
// of the one module it occupies around its command dispatch, so two
// workflows pipelined through the same workcell can overlap on different
// instruments (one mixing on a liquid handler while the other photographs)
// but never occupy the same instrument at the same virtual time.
//
// Leases are FIFO-fair: waiters are granted the module strictly in arrival
// order, so a long workflow cannot starve a short one. The layer is
// virtual-clock-aware — a goroutine blocked on a busy module deregisters
// itself as a simulation worker (exactly like core's camera gate) so
// virtual time keeps advancing for the workflow that holds the module, and
// the measured queue wait is robot time, not host time.
//
// A nil *Reservations disables leasing: Engine treats it as "this engine is
// the module's only user", which is the single-workflow behavior the repo
// always had.
type Reservations struct {
	clock sim.Clock
	// sim is non-nil when clock is a virtual clock whose worker accounting
	// must be maintained while a caller blocks on a busy module.
	sim *sim.SimClock

	mu   sync.Mutex
	mods map[string]*lease
}

// lease is one module's occupancy state.
type lease struct {
	held  bool
	queue []chan struct{} // FIFO waiters; closed channel = lease handed off

	// usage accounting, all measured on the reservation clock.
	acquires  int
	busy      time.Duration
	queueWait time.Duration
	maxQueue  int
	heldSince time.Time
}

// ModuleUsage is one module's occupancy statistics as observed by the lease
// layer.
type ModuleUsage struct {
	// Acquires counts lease grants (one per command attempt).
	Acquires int
	// Busy is total time the module was held.
	Busy time.Duration
	// QueueWait is total time acquirers spent waiting for the module.
	QueueWait time.Duration
	// MaxQueue is the deepest wait queue observed behind the holder.
	MaxQueue int
}

// NewReservations returns a lease table measuring waits on clock. When clock
// is a *sim.SimClock the table participates in its worker accounting, so
// blocking on a busy module never stalls virtual time.
func NewReservations(clock sim.Clock) *Reservations {
	r := &Reservations{clock: clock, mods: map[string]*lease{}}
	if sc, ok := clock.(*sim.SimClock); ok {
		r.sim = sc
	}
	return r
}

// Acquire blocks until the caller holds the named module's lease and returns
// the queue wait measured on the reservation clock (zero when the module was
// free). Callers must Release with the same module name.
func (r *Reservations) Acquire(module string) time.Duration {
	start := r.clock.Now()
	r.mu.Lock()
	l := r.mods[module]
	if l == nil {
		l = &lease{}
		r.mods[module] = l
	}
	if !l.held {
		l.held = true
		l.acquires++
		l.heldSince = start
		r.mu.Unlock()
		return 0
	}
	ch := make(chan struct{})
	l.queue = append(l.queue, ch)
	if len(l.queue) > l.maxQueue {
		l.maxQueue = len(l.queue)
	}
	r.mu.Unlock()

	// Deregister as a simulation worker while blocked: the holder's sleeps
	// are what advance virtual time, and the clock must not wait for us.
	// Release re-registers us on our behalf before the handoff, so the
	// clock cannot advance between the grant and our resumption — queue
	// waits stay deterministic for a given schedule of sleeps.
	if r.sim != nil {
		r.sim.DoneWorker()
	}
	<-ch

	wait := r.clock.Now().Sub(start)
	r.mu.Lock()
	l.acquires++
	l.queueWait += wait
	r.mu.Unlock()
	return wait
}

// Release returns the module's lease, handing it directly to the oldest
// waiter if any (the handoff is what makes the queue FIFO-fair: a new
// Acquire cannot barge in while anyone is queued, because the lease never
// becomes free in between).
func (r *Reservations) Release(module string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.mods[module]
	if l == nil || !l.held {
		panic("wei: Release of module not held: " + module)
	}
	now := r.clock.Now()
	l.busy += now.Sub(l.heldSince)
	if len(l.queue) > 0 {
		ch := l.queue[0]
		l.queue = l.queue[1:]
		l.heldSince = now
		// Re-register the waiter as a clock worker on its behalf before the
		// handoff: were this left to the waiter after it wakes, the released
		// clock could advance past the grant while the waiter is still
		// unscheduled, making measured waits depend on goroutine timing.
		if r.sim != nil {
			r.sim.AddWorker(1)
		}
		close(ch) // lease stays held; ownership transfers to the waiter
		return
	}
	l.held = false
}

// Usage returns a snapshot of per-module occupancy statistics. Busy for a
// currently-held module includes the in-progress hold up to now.
func (r *Reservations) Usage() map[string]ModuleUsage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]ModuleUsage, len(r.mods))
	for name, l := range r.mods {
		u := ModuleUsage{
			Acquires:  l.acquires,
			Busy:      l.busy,
			QueueWait: l.queueWait,
			MaxQueue:  l.maxQueue,
		}
		if l.held {
			u.Busy += r.clock.Now().Sub(l.heldSince)
		}
		out[name] = u
	}
	return out
}
