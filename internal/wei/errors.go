package wei

import (
	"context"
	"errors"
	"fmt"
)

// ErrClass classifies a command failure for retry and rescheduling policy.
// The engine retries only ClassRetryable failures in place; the fleet
// scheduler uses the class of a step's final error to decide whether to
// retire the workcell that produced it (ClassWorkcellDown), fail the
// campaign outright (ClassPermanent), or apply its sick-cell heuristics
// (retries exhausted on a ClassRetryable fault).
type ErrClass int

const (
	// ClassRetryable marks a transient failure: the same command may succeed
	// on the next attempt (dropped command, instrument glitch, HTTP 5xx).
	// This is the default for unrecognized errors — the paper's workcell
	// recovers most failures by simple retry, so unknown errors get the
	// benefit of the doubt.
	ClassRetryable ErrClass = iota
	// ClassPermanent marks a failure retrying cannot fix: a canceled
	// context, an unknown module or action, a rejected request. The command
	// (and its step) fails on the first attempt.
	ClassPermanent
	// ClassWorkcellDown marks a failure of the workcell itself rather than
	// the command: the module server is unreachable, hung past its request
	// timeout, or answering garbage. The cell should leave the pool and its
	// campaign should be rescheduled onto a healthy one.
	ClassWorkcellDown
)

// String returns the class name used on the wire and in logs.
func (c ErrClass) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassPermanent:
		return "permanent"
	case ClassWorkcellDown:
		return "workcell_down"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// parseErrClass maps a wire string back to a class, defaulting to retryable
// so responses from older servers (no class field) keep today's behavior.
func parseErrClass(s string) ErrClass {
	switch s {
	case ClassPermanent.String():
		return ClassPermanent
	case ClassWorkcellDown.String():
		return ClassWorkcellDown
	default:
		return ClassRetryable
	}
}

// TransportError reports a command that could not be exchanged with a module
// server: the connection failed, the request timed out with the caller's
// context still live, or the response was undecodable. It classifies as
// ClassWorkcellDown — the cell, not the command, is the problem.
type TransportError struct {
	// Module is the module addressed, when known.
	Module string
	// Op is the transport operation that failed: "act", "state", "about",
	// "health", "reset", or "decode" for an unparseable response.
	Op  string
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	if e.Module != "" {
		return fmt.Sprintf("wei: transport %s %s: %v", e.Op, e.Module, e.Err)
	}
	return fmt.Sprintf("wei: transport %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying network or decode error.
func (e *TransportError) Unwrap() error { return e.Err }

// StatusError reports a non-200 HTTP response from a module server. 5xx
// classifies as retryable (the server is alive but struggling); everything
// else — 404 for an unknown module or endpoint, 400 for a rejected request —
// is permanent.
type StatusError struct {
	Module string
	Op     string
	Code   int
	Body   string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("wei: %s %s: HTTP %d: %s", e.Op, e.Module, e.Code, e.Body)
}

// Class returns the status code's classification.
func (e *StatusError) Class() ErrClass {
	if e.Code >= 500 {
		return ClassRetryable
	}
	return ClassPermanent
}

// RemoteActionError reports an action the server executed and the module
// failed. The server classifies its own error (it still has the typed value)
// and the class rides the response, so a remote unknown-action failure stays
// permanent on the client side even though the error type itself cannot
// cross the wire.
type RemoteActionError struct {
	Module string
	Action string
	Msg    string
	// ErrClass is the server-side classification of the module error.
	ErrClass ErrClass
}

// Error implements error.
func (e *RemoteActionError) Error() string {
	return fmt.Sprintf("wei: %s.%s: %s", e.Module, e.Action, e.Msg)
}

// Classify maps err to its retry class. It inspects the whole wrap chain, so
// classifying a step error wrapped in ErrStepFailed finds the root cause.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassRetryable
	}
	var te *TransportError
	if errors.As(err, &te) {
		return ClassWorkcellDown
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Class()
	}
	var re *RemoteActionError
	if errors.As(err, &re) {
		return re.ErrClass
	}
	// Context errors checked after TransportError: a request that timed out
	// against a dead server wraps the deadline inside a TransportError, while
	// a bare context error means the caller canceled the work.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassPermanent
	}
	var nm *ErrNoModule
	if errors.As(err, &nm) {
		return ClassPermanent
	}
	var ua *ErrUnknownAction
	if errors.As(err, &ua) {
		return ClassPermanent
	}
	return ClassRetryable
}
