package wei

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Registry is the in-process Client: modules run in the same address space
// and commands are direct method calls. It is also the module set that
// ServeModules exposes over HTTP.
type Registry struct {
	mu      sync.RWMutex
	modules map[string]Module
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{modules: make(map[string]Module)}
}

// Add registers a module. Duplicate names are a programming error.
func (r *Registry) Add(m Module) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.modules[m.Name()]; dup {
		panic(fmt.Sprintf("wei: duplicate module %q", m.Name()))
	}
	r.modules[m.Name()] = m
}

// Get looks a module up by name.
func (r *Registry) Get(name string) (Module, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.modules[name]
	return m, ok
}

// Names returns the registered module names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.modules))
	for n := range r.modules {
		out = append(out, n)
	}
	return out
}

// ErrNoModule reports a command for an unknown module.
type ErrNoModule struct{ Module string }

// Error implements error.
func (e *ErrNoModule) Error() string { return fmt.Sprintf("wei: unknown module %q", e.Module) }

// Act implements Client.
func (r *Registry) Act(ctx context.Context, module, action string, args Args) (Result, error) {
	m, ok := r.Get(module)
	if !ok {
		return nil, &ErrNoModule{Module: module}
	}
	return m.Act(ctx, action, args)
}

// State implements Client.
func (r *Registry) State(ctx context.Context, module string) (ModuleState, error) {
	m, ok := r.Get(module)
	if !ok {
		return "", &ErrNoModule{Module: module}
	}
	return m.State(), nil
}

// About implements Client.
func (r *Registry) About(ctx context.Context, module string) (ModuleInfo, error) {
	m, ok := r.Get(module)
	if !ok {
		return ModuleInfo{}, &ErrNoModule{Module: module}
	}
	return m.About(), nil
}

// The HTTP wire protocol: each module is exposed under /modules/<name>/ with
//   POST action  {"action": ..., "args": {...}} -> {"result": {...}} | {"error": ...}
//   GET  state   -> {"state": "ready"}
//   GET  about   -> ModuleInfo
// mirroring how WEI module servers expose device drivers on attached
// computers.

type actRequest struct {
	Action string `json:"action"`
	Args   Args   `json:"args,omitempty"`
}

type actResponse struct {
	Result Result `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ServeModules returns an http.Handler exposing every module in the
// registry under /modules/<name>/{action,state,about}.
func ServeModules(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/modules/", func(w http.ResponseWriter, req *http.Request) {
		rest := strings.TrimPrefix(req.URL.Path, "/modules/")
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 {
			http.Error(w, "bad module path", http.StatusNotFound)
			return
		}
		name, endpoint := parts[0], parts[1]
		m, ok := reg.Get(name)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown module %q", name), http.StatusNotFound)
			return
		}
		switch endpoint {
		case "action":
			if req.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			var ar actRequest
			if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
			res, err := m.Act(req.Context(), ar.Action, ar.Args)
			resp := actResponse{Result: res}
			if err != nil {
				resp.Error = err.Error()
			}
			writeJSON(w, resp)
		case "state":
			writeJSON(w, map[string]any{"state": string(m.State())})
		case "about":
			writeJSON(w, m.About())
		default:
			http.Error(w, "unknown endpoint", http.StatusNotFound)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{"ok": true, "modules": reg.Names()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// HTTPClient is a Client that reaches modules over HTTP. Each module maps to
// a base URL (scheme://host:port), so modules can be spread across machines
// as in the physical workcell.
type HTTPClient struct {
	// BaseURL maps module name to server base URL.
	BaseURL map[string]string
	// HTTP is the underlying http client (default: 30s timeout).
	HTTP *http.Client
}

// NewHTTPClient returns a client for modules all served by one base URL.
func NewHTTPClient(baseURL string, modules ...string) *HTTPClient {
	m := make(map[string]string, len(modules))
	for _, name := range modules {
		m[name] = baseURL
	}
	return &HTTPClient{BaseURL: m, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *HTTPClient) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *HTTPClient) moduleURL(module, endpoint string) (string, error) {
	base, ok := c.BaseURL[module]
	if !ok {
		return "", &ErrNoModule{Module: module}
	}
	return fmt.Sprintf("%s/modules/%s/%s", strings.TrimSuffix(base, "/"), module, endpoint), nil
}

// Act implements Client over HTTP.
func (c *HTTPClient) Act(ctx context.Context, module, action string, args Args) (Result, error) {
	url, err := c.moduleURL(module, "action")
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(actRequest{Action: action, Args: args})
	if err != nil {
		return nil, fmt.Errorf("wei: encode action request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, fmt.Errorf("wei: %s.%s: %w", module, action, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("wei: %s.%s: HTTP %d: %s", module, action, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var ar actResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return nil, fmt.Errorf("wei: decode action response: %w", err)
	}
	if ar.Error != "" {
		return nil, fmt.Errorf("wei: %s.%s: %s", module, action, ar.Error)
	}
	return ar.Result, nil
}

// State implements Client over HTTP.
func (c *HTTPClient) State(ctx context.Context, module string) (ModuleState, error) {
	url, err := c.moduleURL(module, "state")
	if err != nil {
		return "", err
	}
	var out struct {
		State string `json:"state"`
	}
	if err := c.getJSON(ctx, url, &out); err != nil {
		return "", err
	}
	return ModuleState(out.State), nil
}

// About implements Client over HTTP.
func (c *HTTPClient) About(ctx context.Context, module string) (ModuleInfo, error) {
	url, err := c.moduleURL(module, "about")
	if err != nil {
		return ModuleInfo{}, err
	}
	var out ModuleInfo
	if err := c.getJSON(ctx, url, &out); err != nil {
		return ModuleInfo{}, err
	}
	return out, nil
}

func (c *HTTPClient) getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("wei: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
