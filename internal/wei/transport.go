package wei

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Registry is the in-process Client: modules run in the same address space
// and commands are direct method calls. It is also the module set that
// ServeModules exposes over HTTP.
type Registry struct {
	mu      sync.RWMutex
	modules map[string]Module
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{modules: make(map[string]Module)}
}

// Add registers a module. Duplicate names are a programming error.
func (r *Registry) Add(m Module) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.modules[m.Name()]; dup {
		panic(fmt.Sprintf("wei: duplicate module %q", m.Name()))
	}
	r.modules[m.Name()] = m
}

// Get looks a module up by name.
func (r *Registry) Get(name string) (Module, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.modules[name]
	return m, ok
}

// Names returns the registered module names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.modules))
	for n := range r.modules {
		out = append(out, n)
	}
	return out
}

// ErrNoModule reports a command for an unknown module.
type ErrNoModule struct{ Module string }

// Error implements error.
func (e *ErrNoModule) Error() string { return fmt.Sprintf("wei: unknown module %q", e.Module) }

// Act implements Client.
func (r *Registry) Act(ctx context.Context, module, action string, args Args) (Result, error) {
	m, ok := r.Get(module)
	if !ok {
		return nil, &ErrNoModule{Module: module}
	}
	return m.Act(ctx, action, args)
}

// State implements Client.
func (r *Registry) State(ctx context.Context, module string) (ModuleState, error) {
	m, ok := r.Get(module)
	if !ok {
		return "", &ErrNoModule{Module: module}
	}
	return m.State(), nil
}

// About implements Client.
func (r *Registry) About(ctx context.Context, module string) (ModuleInfo, error) {
	m, ok := r.Get(module)
	if !ok {
		return ModuleInfo{}, &ErrNoModule{Module: module}
	}
	return m.About(), nil
}

// The HTTP wire protocol: each module is exposed under /modules/<name>/ with
//   POST action  {"action": ..., "args": {...}} -> {"result": {...}} | {"error": ..., "err_class": ...}
//   GET  state   -> {"state": "ready"}
//   GET  about   -> ModuleInfo
// plus the whole-workcell endpoints served by WorkcellServer:
//   GET  /healthz -> HealthInfo
//   POST /reset   {"campaign": ...} -> ResetInfo
//   GET  /session -> SessionInfo
// mirroring how WEI module servers expose device drivers on attached
// computers.

type actRequest struct {
	Action string `json:"action"`
	Args   Args   `json:"args,omitempty"`
}

type actResponse struct {
	Result Result `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	// ErrClass is the server-side Classify result for Error ("retryable",
	// "permanent"). Absent in responses from older servers, which the client
	// reads as retryable — today's behavior.
	ErrClass string `json:"err_class,omitempty"`
}

// Timeouts for the HTTP client. The command timeout must exceed the longest
// modeled instrument action run with -realtime: a plate transfer is ~42s of
// arm time, and a batch mix is SetupDuration + batch×WellDuration ≈ 8.5min
// at the default batch of four wells. Control-plane calls (health, reset,
// state) answer immediately and get a tight bound so a dead cell is detected
// quickly.
const (
	// DefaultActTimeout bounds one module command round-trip (default for
	// NewHTTPClient). Raise it via HTTPClient.HTTP for realtime runs with
	// large batches.
	DefaultActTimeout = 15 * time.Minute
	// DefaultControlTimeout bounds health, reset and state calls.
	DefaultControlTimeout = 10 * time.Second
)

// HTTPClient is a Client that reaches modules over HTTP. Each module maps to
// a base URL (scheme://host:port), so modules can be spread across machines
// as in the physical workcell.
type HTTPClient struct {
	// BaseURL maps module name to server base URL.
	BaseURL map[string]string
	// HTTP is the underlying http client (default: DefaultActTimeout).
	HTTP *http.Client
}

// NewHTTPClient returns a client for modules all served by one base URL,
// with the command timeout DefaultActTimeout. Use WithTimeout (or set HTTP
// directly) to change it.
func NewHTTPClient(baseURL string, modules ...string) *HTTPClient {
	m := make(map[string]string, len(modules))
	for _, name := range modules {
		m[name] = baseURL
	}
	return &HTTPClient{BaseURL: m, HTTP: &http.Client{Timeout: DefaultActTimeout}}
}

// WithTimeout sets the per-command wall-clock timeout and returns c.
func (c *HTTPClient) WithTimeout(d time.Duration) *HTTPClient {
	c.HTTP = &http.Client{Timeout: d}
	return c
}

func (c *HTTPClient) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: DefaultActTimeout}
}

func (c *HTTPClient) moduleURL(module, endpoint string) (string, error) {
	base, ok := c.BaseURL[module]
	if !ok {
		return "", &ErrNoModule{Module: module}
	}
	return fmt.Sprintf("%s/modules/%s/%s", strings.TrimSuffix(base, "/"), module, endpoint), nil
}

// transportErr wraps a failed HTTP exchange. A live caller context means the
// server itself is unreachable or hung (ClassWorkcellDown); a dead caller
// context means the work was canceled, which must classify as permanent.
func transportErr(ctx context.Context, module, op string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("wei: %s %s: %w", op, module, ctxErr)
	}
	return &TransportError{Module: module, Op: op, Err: err}
}

// Act implements Client over HTTP.
func (c *HTTPClient) Act(ctx context.Context, module, action string, args Args) (Result, error) {
	url, err := c.moduleURL(module, "action")
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(actRequest{Action: action, Args: args})
	if err != nil {
		return nil, fmt.Errorf("wei: encode action request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, transportErr(ctx, module, "act", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, &StatusError{Module: module, Op: "act", Code: resp.StatusCode,
			Body: strings.TrimSpace(string(msg))}
	}
	var ar actResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		// A non-JSON or truncated body from a supposedly healthy server is a
		// transport fault, not an action failure.
		return nil, transportErr(ctx, module, "decode", err)
	}
	if ar.Error != "" {
		return nil, &RemoteActionError{Module: module, Action: action,
			Msg: ar.Error, ErrClass: parseErrClass(ar.ErrClass)}
	}
	return ar.Result, nil
}

// State implements Client over HTTP.
func (c *HTTPClient) State(ctx context.Context, module string) (ModuleState, error) {
	url, err := c.moduleURL(module, "state")
	if err != nil {
		return "", err
	}
	var out struct {
		State string `json:"state"`
	}
	if err := c.getJSON(ctx, module, "state", url, &out); err != nil {
		return "", err
	}
	return ModuleState(out.State), nil
}

// About implements Client over HTTP.
func (c *HTTPClient) About(ctx context.Context, module string) (ModuleInfo, error) {
	url, err := c.moduleURL(module, "about")
	if err != nil {
		return ModuleInfo{}, err
	}
	var out ModuleInfo
	if err := c.getJSON(ctx, module, "about", url, &out); err != nil {
		return ModuleInfo{}, err
	}
	return out, nil
}

func (c *HTTPClient) getJSON(ctx context.Context, module, op, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return transportErr(ctx, module, op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &StatusError{Module: module, Op: op, Code: resp.StatusCode,
			Body: strings.TrimSpace(string(msg))}
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return transportErr(ctx, module, "decode", err)
	}
	return nil
}

// WorkcellClient drives one remote workcell server's whole-cell endpoints —
// health-gated admission and the per-campaign session reset — and builds the
// per-module command client the engine uses. One WorkcellClient corresponds
// to one cell in a fleet pool.
type WorkcellClient struct {
	// Base is the server's base URL (scheme://host:port).
	Base string
	// HTTP is the control-plane client (default: DefaultControlTimeout).
	HTTP *http.Client
}

// NewWorkcellClient returns a client for the workcell server at base.
func NewWorkcellClient(base string) *WorkcellClient {
	return &WorkcellClient{
		Base: strings.TrimSuffix(base, "/"),
		HTTP: &http.Client{Timeout: DefaultControlTimeout},
	}
}

func (w *WorkcellClient) httpc() *http.Client {
	if w.HTTP != nil {
		return w.HTTP
	}
	return &http.Client{Timeout: DefaultControlTimeout}
}

// Health fetches /healthz. Any transport failure, non-200 status or
// undecodable body returns a ClassWorkcellDown error, so callers can gate
// admission with Classify.
func (w *WorkcellClient) Health(ctx context.Context) (HealthInfo, error) {
	var out HealthInfo
	if err := w.controlGet(ctx, "health", w.Base+"/healthz", &out); err != nil {
		return HealthInfo{}, err
	}
	if !out.OK {
		return out, &TransportError{Op: "health", Err: fmt.Errorf("server at %s reports not ok", w.Base)}
	}
	return out, nil
}

// Reset posts /reset, starting a new session: the server restores fresh
// module state (plate stock, reservoirs) and rolls its command log, so the
// next campaign starts from a clean cell with a private event boundary.
func (w *WorkcellClient) Reset(ctx context.Context, campaign string) (ResetInfo, error) {
	body, _ := json.Marshal(resetRequest{Campaign: campaign})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+"/reset", bytes.NewReader(body))
	if err != nil {
		return ResetInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.httpc().Do(req)
	if err != nil {
		return ResetInfo{}, transportErr(ctx, "", "reset", err)
	}
	defer resp.Body.Close()
	var out ResetInfo
	if err := w.controlDecode("reset", resp, &out); err != nil {
		return ResetInfo{}, err
	}
	return out, nil
}

// ModuleClient returns an HTTPClient addressing the named modules at this
// workcell's base URL, with the command timeout actTimeout (0 uses
// DefaultActTimeout).
func (w *WorkcellClient) ModuleClient(actTimeout time.Duration, modules ...string) *HTTPClient {
	c := NewHTTPClient(w.Base, modules...)
	if actTimeout > 0 {
		c.WithTimeout(actTimeout)
	}
	return c
}

func (w *WorkcellClient) controlGet(ctx context.Context, op, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := w.httpc().Do(req)
	if err != nil {
		return transportErr(ctx, "", op, err)
	}
	defer resp.Body.Close()
	return w.controlDecode(op, resp, v)
}

// controlDecode applies the control plane's shared response policy: any
// non-200 status or undecodable body means the cell cannot take campaigns,
// which is workcell-down regardless of the specific code — unlike module
// commands, where a 5xx is worth retrying in place.
func (w *WorkcellClient) controlDecode(op string, resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &TransportError{Op: op, Err: fmt.Errorf("HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(msg)))}
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return &TransportError{Op: op, Err: err}
	}
	return nil
}
