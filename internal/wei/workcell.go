package wei

import (
	"fmt"
	"os"

	"colormatch/internal/yamlite"
)

// ModuleSpec is one module entry in a workcell file.
type ModuleSpec struct {
	Name   string
	Type   string
	Config yamlite.Map
}

// WorkcellSpec is the declarative description of a workcell: "a declarative
// YAML notation is used to specify how a workcell is configured from a set
// of modules."
type WorkcellSpec struct {
	Name      string
	Modules   []ModuleSpec
	Locations []string
}

// ParseWorkcell decodes a workcell YAML document.
func ParseWorkcell(data []byte) (*WorkcellSpec, error) {
	doc, err := yamlite.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("wei: workcell: %w", err)
	}
	root, err := yamlite.AsMap(doc)
	if err != nil {
		return nil, fmt.Errorf("wei: workcell: %w", err)
	}
	name, err := yamlite.Str(root, "name")
	if err != nil {
		return nil, fmt.Errorf("wei: workcell: %w", err)
	}
	spec := &WorkcellSpec{Name: name}
	if _, ok := root["locations"]; ok {
		locs, err := yamlite.StringList(root, "locations")
		if err != nil {
			return nil, fmt.Errorf("wei: workcell: %w", err)
		}
		spec.Locations = locs
	}
	mods, err := yamlite.SubList(root, "modules")
	if err != nil {
		return nil, fmt.Errorf("wei: workcell: %w", err)
	}
	seen := map[string]bool{}
	for i, m := range mods {
		mm, err := yamlite.AsMap(m)
		if err != nil {
			return nil, fmt.Errorf("wei: workcell module %d: %w", i, err)
		}
		mname, err := yamlite.Str(mm, "name")
		if err != nil {
			return nil, fmt.Errorf("wei: workcell module %d: %w", i, err)
		}
		mtype, err := yamlite.Str(mm, "type")
		if err != nil {
			return nil, fmt.Errorf("wei: workcell module %q: %w", mname, err)
		}
		if seen[mname] {
			return nil, fmt.Errorf("wei: workcell: duplicate module %q", mname)
		}
		seen[mname] = true
		ms := ModuleSpec{Name: mname, Type: mtype}
		if cfg, ok := mm["config"]; ok && cfg != nil {
			cm, err := yamlite.AsMap(cfg)
			if err != nil {
				return nil, fmt.Errorf("wei: workcell module %q config: %w", mname, err)
			}
			ms.Config = cm
		}
		spec.Modules = append(spec.Modules, ms)
	}
	if len(spec.Modules) == 0 {
		return nil, fmt.Errorf("wei: workcell %q declares no modules", name)
	}
	return spec, nil
}

// LoadWorkcell reads and parses a workcell YAML file.
func LoadWorkcell(path string) (*WorkcellSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wei: workcell: %w", err)
	}
	return ParseWorkcell(data)
}

// Module returns the spec of the named module.
func (w *WorkcellSpec) Module(name string) (ModuleSpec, bool) {
	for _, m := range w.Modules {
		if m.Name == name {
			return m, true
		}
	}
	return ModuleSpec{}, false
}

// ModulesOfType returns the names of all modules with the given type, in
// declaration order. Workflows are retargetable across modules of the same
// type ("workflows can be retargeted to different modules and workcells
// that provide comparable capabilities").
func (w *WorkcellSpec) ModulesOfType(typ string) []string {
	var out []string
	for _, m := range w.Modules {
		if m.Type == typ {
			out = append(out, m.Name)
		}
	}
	return out
}

// Marshal re-encodes the spec as YAML.
func (w *WorkcellSpec) Marshal() ([]byte, error) {
	mods := yamlite.List{}
	for _, m := range w.Modules {
		mm := yamlite.Map{"name": m.Name, "type": m.Type}
		if len(m.Config) > 0 {
			mm["config"] = m.Config
		}
		mods = append(mods, mm)
	}
	root := yamlite.Map{"name": w.Name, "modules": mods}
	if len(w.Locations) > 0 {
		locs := yamlite.List{}
		for _, l := range w.Locations {
			locs = append(locs, l)
		}
		root["locations"] = locs
	}
	return yamlite.Marshal(root)
}
