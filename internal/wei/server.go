package wei

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"colormatch/internal/sim"
)

// HealthInfo is the /healthz response: liveness plus enough session state
// for a fleet scheduler to gate admission.
type HealthInfo struct {
	OK      bool     `json:"ok"`
	Modules []string `json:"modules"`
	// Session is the current session number (1-based; bumped by /reset).
	Session int `json:"session"`
	// Campaign labels the session, when the resetter provided one.
	Campaign string `json:"campaign,omitempty"`
	// Commands counts module commands received this session.
	Commands int `json:"commands"`
	// Caps advertises what the cell can do (lane count, liquid handlers,
	// realtime vs simulated, camera present) so a fleet control plane can
	// place campaigns capability-aware. Zero when the server predates the
	// field or chose not to advertise.
	Caps Capabilities `json:"caps"`
}

// ResetInfo is the /reset response.
type ResetInfo struct {
	// Session is the new session's number.
	Session int `json:"session"`
	// Modules is the module set now served (fresh instances after a reset
	// with a provisioning hook).
	Modules []string `json:"modules"`
}

// SessionInfo is the /session response: the current session and its
// command-level event log, the server-side counterpart of the engine's
// per-campaign event log.
type SessionInfo struct {
	Session  int       `json:"session"`
	Campaign string    `json:"campaign,omitempty"`
	Started  time.Time `json:"started"`
	Commands int       `json:"commands"`
	Events   []Event   `json:"events"`
}

type resetRequest struct {
	Campaign string `json:"campaign,omitempty"`
}

// ServerOptions configure a WorkcellServer beyond plain module dispatch.
type ServerOptions struct {
	// Reset, when non-nil, is called by POST /reset and must return a
	// freshly provisioned module set (full plate stock, filled reservoirs,
	// cleared device state) to swap in for the next session. When nil,
	// /reset still starts a new session — rolling the command log and
	// counters — but keeps serving the same modules.
	Reset func() (*Registry, error)
	// Clock stamps the per-session command log (default: wall clock, the
	// time base an operator reading server logs expects).
	Clock sim.Clock
	// Caps is advertised on /healthz for capability-aware placement.
	Caps Capabilities
}

// WorkcellServer exposes a workcell's modules over HTTP together with the
// whole-cell control plane: /healthz for health-gated admission, /reset for
// per-campaign session boundaries, /session for the server-side command log.
// It plays the role of the device-computer module server in the physical
// deployment.
type WorkcellServer struct {
	opts ServerOptions

	mu       sync.RWMutex
	reg      *Registry
	session  int
	campaign string
	started  time.Time
	commands int
	log      *EventLog
}

// NewWorkcellServer returns a server for the given module set.
func NewWorkcellServer(reg *Registry, opts ServerOptions) *WorkcellServer {
	if opts.Clock == nil {
		opts.Clock = sim.RealClock{}
	}
	return &WorkcellServer{
		opts:    opts,
		reg:     reg,
		session: 1,
		started: opts.Clock.Now(),
		log:     NewEventLog(opts.Clock),
	}
}

// Registry returns the currently served module set.
func (s *WorkcellServer) Registry() *Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

// Session returns the current session number.
func (s *WorkcellServer) Session() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.session
}

// reset starts a new session, swapping in freshly provisioned modules when a
// Reset hook is configured.
func (s *WorkcellServer) reset(campaign string) (ResetInfo, error) {
	var fresh *Registry
	if s.opts.Reset != nil {
		var err error
		fresh, err = s.opts.Reset()
		if err != nil {
			return ResetInfo{}, fmt.Errorf("wei: reset workcell: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fresh != nil {
		s.reg = fresh
	}
	s.session++
	s.campaign = campaign
	s.started = s.opts.Clock.Now()
	s.commands = 0
	s.log = NewEventLog(s.opts.Clock)
	return ResetInfo{Session: s.session, Modules: s.reg.Names()}, nil
}

// Handler returns the server's http.Handler.
func (s *WorkcellServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/modules/", s.handleModules)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/reset", s.handleReset)
	mux.HandleFunc("/session", s.handleSession)
	return mux
}

func (s *WorkcellServer) handleModules(w http.ResponseWriter, req *http.Request) {
	rest := strings.TrimPrefix(req.URL.Path, "/modules/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 {
		http.Error(w, "bad module path", http.StatusNotFound)
		return
	}
	name, endpoint := parts[0], parts[1]
	m, ok := s.Registry().Get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown module %q", name), http.StatusNotFound)
		return
	}
	switch endpoint {
	case "action":
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var ar actRequest
		if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.commands++
		log := s.log
		s.mu.Unlock()
		log.Append(Event{Kind: EvCommandSent, Module: name, Action: ar.Action})
		start := s.opts.Clock.Now()
		res, err := m.Act(req.Context(), ar.Action, ar.Args)
		dur := s.opts.Clock.Now().Sub(start)
		resp := actResponse{Result: res}
		if err != nil {
			// The typed error cannot cross the wire; its classification can.
			resp.Error = err.Error()
			resp.ErrClass = Classify(err).String()
			log.Append(Event{Kind: EvCommandFailed, Module: name, Action: ar.Action,
				Duration: dur, Err: err.Error()})
		} else {
			log.Append(Event{Kind: EvCommandDone, Module: name, Action: ar.Action, Duration: dur})
		}
		writeJSON(w, resp)
	case "state":
		writeJSON(w, map[string]any{"state": string(m.State())})
	case "about":
		writeJSON(w, m.About())
	default:
		http.Error(w, "unknown endpoint", http.StatusNotFound)
	}
}

func (s *WorkcellServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	info := HealthInfo{
		OK:       true,
		Modules:  s.reg.Names(),
		Session:  s.session,
		Campaign: s.campaign,
		Commands: s.commands,
		Caps:     s.opts.Caps,
	}
	s.mu.RUnlock()
	writeJSON(w, info)
}

func (s *WorkcellServer) handleReset(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var rr resetRequest
	// An empty body is a valid anonymous reset.
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	info, err := s.reset(rr.Campaign)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, info)
}

func (s *WorkcellServer) handleSession(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	info := SessionInfo{
		Session:  s.session,
		Campaign: s.campaign,
		Started:  s.started,
		Commands: s.commands,
		Events:   s.log.Events(),
	}
	s.mu.RUnlock()
	writeJSON(w, info)
}

// ServeModules returns an http.Handler exposing every module in the
// registry under /modules/<name>/{action,state,about}, plus /healthz. It is
// the fixed-module-set convenience over NewWorkcellServer: sessions work,
// but /reset cannot provision fresh modules.
func ServeModules(reg *Registry) http.Handler {
	return NewWorkcellServer(reg, ServerOptions{}).Handler()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
