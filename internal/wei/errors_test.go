package wei

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"colormatch/internal/sim"
)

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ClassRetryable},
		{"plain", errors.New("instrument glitch"), ClassRetryable},
		{"injected fault", &sim.FaultError{Kind: sim.FaultReceive, Module: "ot2", Action: "mix"}, ClassRetryable},
		{"canceled", context.Canceled, ClassPermanent},
		{"deadline", context.DeadlineExceeded, ClassPermanent},
		{"wrapped canceled", fmt.Errorf("core: mix: %w", context.Canceled), ClassPermanent},
		{"no module", &ErrNoModule{Module: "ghost"}, ClassPermanent},
		{"unknown action", &ErrUnknownAction{Module: "dev", Action: "nope"}, ClassPermanent},
		{"transport", &TransportError{Module: "dev", Op: "act", Err: errors.New("connection refused")}, ClassWorkcellDown},
		{"transport wrapping deadline", &TransportError{Op: "act", Err: context.DeadlineExceeded}, ClassWorkcellDown},
		{"status 404", &StatusError{Module: "ghost", Op: "act", Code: 404, Body: "unknown module"}, ClassPermanent},
		{"status 503", &StatusError{Module: "dev", Op: "act", Code: 503, Body: "overloaded"}, ClassRetryable},
		{"remote permanent", &RemoteActionError{Module: "dev", Action: "nope", Msg: "no action", ErrClass: ClassPermanent}, ClassPermanent},
		{"remote retryable", &RemoteActionError{Module: "dev", Action: "mix", Msg: "glitch"}, ClassRetryable},
		{"step-failed wrap", fmt.Errorf("%w: dev.act: %w", ErrStepFailed, &ErrNoModule{Module: "dev"}), ClassPermanent},
		{"deep wrap", fmt.Errorf("core: mix: %w", fmt.Errorf("%w: dev.a: %w", ErrStepFailed,
			&TransportError{Op: "act", Err: errors.New("EOF")})), ClassWorkcellDown},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestErrClassString(t *testing.T) {
	for _, c := range []ErrClass{ClassRetryable, ClassPermanent, ClassWorkcellDown} {
		if parseErrClass(c.String()) != c {
			t.Errorf("parseErrClass(%q) != %v", c.String(), c)
		}
	}
	// Unknown or absent wire strings default to retryable: older servers
	// without err_class must keep today's retry behavior.
	if parseErrClass("") != ClassRetryable || parseErrClass("gibberish") != ClassRetryable {
		t.Error("unknown class strings should parse as retryable")
	}
}

// TestEnginePermanentErrorSingleAttempt is the acceptance criterion: a step
// hitting an unknown module or action fails in exactly one attempt, with no
// retry sleeps inflating the virtual clock.
func TestEnginePermanentErrorSingleAttempt(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	reg.Add(fakeModule("dev", nil))
	eng := NewEngine(reg, clock, NewEventLog(clock))

	for _, step := range []Step{
		{Name: "ghost", Module: "ghost", Action: "ping"},
		{Name: "noact", Module: "dev", Action: "no_such_action"},
	} {
		start := clock.Now()
		rec, err := eng.RunWorkflow(context.Background(), &WorkflowSpec{
			Name: "wf_perm", Steps: []Step{step},
		}, nil)
		if err == nil || !errors.Is(err, ErrStepFailed) {
			t.Fatalf("step %s: err = %v", step.Name, err)
		}
		if Classify(err) != ClassPermanent {
			t.Errorf("step %s classified %v, want permanent", step.Name, Classify(err))
		}
		if got := rec.Steps[0].Attempts; got != 1 {
			t.Errorf("step %s attempts = %d, want 1", step.Name, got)
		}
		if dur := clock.Now().Sub(start); dur != 0 {
			t.Errorf("step %s consumed %v of virtual time (retry sleeps?)", step.Name, dur)
		}
	}
	// No EvCommandSent beyond the first attempt in the log.
	sent := 0
	for _, e := range eng.Log.Events() {
		if e.Kind == EvCommandSent && e.Attempt > 1 {
			sent++
		}
	}
	if sent != 0 {
		t.Errorf("%d retry attempts recorded for permanent errors", sent)
	}
}

// TestEngineCanceledContextSingleAttempt: a canceled campaign must not burn
// MaxAttempts with RetryDelay sleeps.
func TestEngineCanceledContextSingleAttempt(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	m := NewBase("dev", "test", "")
	m.Register(ActionInfo{Name: "work"}, func(ctx context.Context, _ Args) (Result, error) {
		return nil, ctx.Err()
	})
	reg.Add(m)
	eng := NewEngine(reg, clock, NewEventLog(clock))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := clock.Now()
	rec, err := eng.RunWorkflow(ctx, &WorkflowSpec{
		Name: "wf_cancel", Steps: []Step{{Name: "s", Module: "dev", Action: "work"}},
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rec.Steps) != 0 {
		// RunWorkflow checks ctx before the first step, so nothing ran.
		t.Fatalf("steps ran under canceled context: %+v", rec.Steps)
	}
	if dur := clock.Now().Sub(start); dur != 0 {
		t.Errorf("canceled run consumed %v of virtual time", dur)
	}
}

// TestEngineCancelDuringRetryStops: cancellation between attempts stops the
// retry loop at the next attempt boundary instead of burning the budget.
func TestEngineCancelDuringRetryStops(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	m := NewBase("dev", "test", "")
	m.Register(ActionInfo{Name: "work"}, func(context.Context, Args) (Result, error) {
		cancel() // the failure and the cancellation race the retry loop
		return nil, errors.New("transient")
	})
	reg.Add(m)
	eng := NewEngine(reg, clock, NewEventLog(clock))
	eng.MaxAttempts = 5

	rec, err := eng.RunWorkflow(ctx, &WorkflowSpec{
		Name: "wf_cancel_retry", Steps: []Step{{Name: "s", Module: "dev", Action: "work"}},
	}, nil)
	if err == nil {
		t.Fatal("expected failure")
	}
	if got := rec.Steps[0].Attempts; got != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled after first failure)", got)
	}
	// Exactly one retry sleep may have elapsed before the ctx check.
	if dur := clock.Now().Sub(sim.Epoch); dur > eng.RetryDelay {
		t.Fatalf("retry loop kept sleeping after cancel: %v elapsed", dur)
	}
}

func TestRunRecordFilenameSanitized(t *testing.T) {
	dir := t.TempDir()
	rec := &RunRecord{Workflow: "../../evil/wf name", Start: time.Date(2023, 8, 16, 9, 0, 0, 0, time.UTC)}
	path, err := rec.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(path, dir) {
		t.Fatalf("record escaped dir: %s", path)
	}
	rel := strings.TrimPrefix(path, dir)
	if strings.Contains(strings.TrimPrefix(rel, "/"), "/") {
		t.Fatalf("separator survived sanitization: %s", path)
	}
	empty := &RunRecord{Workflow: ""}
	p, err := empty.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "workflow_") {
		t.Fatalf("empty workflow name produced %s", p)
	}
}
