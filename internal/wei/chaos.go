package wei

import (
	"net/http"
	"time"

	"colormatch/internal/sim"
)

// ChaosPlan configures probabilistic misbehavior of a whole workcell HTTP
// server — the control plane included, not just per-command receive faults
// (sim.FaultPlan models those inside the engine). It is the fleet-level
// fault-injection harness: a chaotic server crashes connections, hangs, or
// answers slowly at random, which is what a flaky device computer looks like
// from the scheduler's side. Probabilities are evaluated per request and are
// independent; crash is checked first, then hang, then slow.
type ChaosPlan struct {
	// PCrash is the probability a request's connection is aborted
	// mid-exchange, as if the process crashed.
	PCrash float64
	// PHang is the probability the server sits on a request for HangFor
	// before aborting it — a hung process that keeps the socket open until
	// the client's timeout gives up on it.
	PHang float64
	// PSlow is the probability a request is answered after an extra SlowFor
	// delay — a struggling-but-alive server.
	PSlow float64
	// SlowFor is the slow-answer delay (default 2s).
	SlowFor time.Duration
	// HangFor bounds a hang (default 30s; the client's own timeout normally
	// fires first).
	HangFor time.Duration
	// Seed makes the misbehavior stream reproducible.
	Seed int64
}

// Enabled reports whether the plan injects anything.
func (p ChaosPlan) Enabled() bool { return p.PCrash > 0 || p.PHang > 0 || p.PSlow > 0 }

// ChaosMiddleware wraps next with the plan's misbehavior. With a zero plan it
// returns next unchanged.
func ChaosMiddleware(plan ChaosPlan, next http.Handler) http.Handler {
	if !plan.Enabled() {
		return next
	}
	if plan.SlowFor <= 0 {
		plan.SlowFor = 2 * time.Second
	}
	if plan.HangFor <= 0 {
		plan.HangFor = 30 * time.Second
	}
	rng := sim.NewRNG(plan.Seed)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch roll := rng.Float64(); {
		case roll < plan.PCrash:
			// Aborting the handler makes net/http sever the connection
			// without writing a response: the client sees exactly what a
			// crashed process produces.
			panic(http.ErrAbortHandler)
		case roll < plan.PCrash+plan.PHang:
			select {
			case <-r.Context().Done():
			case <-time.After(plan.HangFor):
			}
			panic(http.ErrAbortHandler)
		case roll < plan.PCrash+plan.PHang+plan.PSlow:
			select {
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			case <-time.After(plan.SlowFor):
			}
		}
		next.ServeHTTP(w, r)
	})
}
