package wei

// Capabilities describes what a workcell can do, advertised on /healthz so a
// fleet control plane can place campaigns capability-aware: a campaign that
// needs a camera never lands on a camera-less cell, a realtime-hardware
// campaign never lands on a simulated one. The zero value means "nothing
// advertised"; schedulers treat such cells as unconstrained (benefit of the
// doubt — a mismatch then surfaces as an ordinary runtime failure, which is
// what older servers without the field already did).
type Capabilities struct {
	// Lanes is the number of campaigns the cell can run concurrently.
	Lanes int `json:"lanes,omitempty"`
	// OT2s is the number of liquid-handler modules.
	OT2s int `json:"ot2s,omitempty"`
	// Realtime reports instruments running on the wall clock (real hardware
	// or -realtime simulation) rather than a virtual clock.
	Realtime bool `json:"realtime,omitempty"`
	// Camera reports an imaging module is present.
	Camera bool `json:"camera,omitempty"`
}

// IsZero reports whether nothing is advertised.
func (c Capabilities) IsZero() bool { return c == Capabilities{} }

// Satisfies reports whether a cell advertising c can serve a requirement
// req. Zero-valued requirement fields do not constrain: the zero requirement
// is satisfied by every cell.
func (c Capabilities) Satisfies(req Capabilities) bool {
	if req.Lanes > 0 && c.Lanes < req.Lanes {
		return false
	}
	if req.OT2s > 0 && c.OT2s < req.OT2s {
		return false
	}
	if req.Realtime && !c.Realtime {
		return false
	}
	if req.Camera && !c.Camera {
		return false
	}
	return true
}
