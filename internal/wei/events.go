package wei

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"colormatch/internal/sim"
)

// EventKind classifies event-log entries. The event log is the ground truth
// from which the paper's proposed SDL metrics (TWH, CCWH, synthesis time,
// transfer time, time per color) are computed.
type EventKind string

// Event kinds recorded by the engine and application.
const (
	EvWorkflowStart EventKind = "workflow_start"
	EvWorkflowEnd   EventKind = "workflow_end"
	EvStepStart     EventKind = "step_start"
	EvStepEnd       EventKind = "step_end"
	EvCommandSent   EventKind = "command_sent"
	EvCommandDone   EventKind = "command_completed"
	EvCommandFailed EventKind = "command_failed"
	// EvGateWait records time an application loop spent blocked on a shared-
	// resource gate (the camera mount) before its workflow could start. The
	// wait rides QueueWait with Module naming the gated resource, so module
	// queue-wait breakdowns include gate contention alongside lease waits.
	EvGateWait   EventKind = "gate_wait"
	EvCompute    EventKind = "compute"
	EvPublish    EventKind = "publish"
	EvHumanInput EventKind = "human_input"
	EvNote       EventKind = "note"
)

// Event is one entry in the experiment's event log.
type Event struct {
	Seq      int           `json:"seq"`
	Time     time.Time     `json:"time"`
	Kind     EventKind     `json:"kind"`
	Workflow string        `json:"workflow,omitempty"`
	Step     string        `json:"step,omitempty"`
	Module   string        `json:"module,omitempty"`
	Action   string        `json:"action,omitempty"`
	Attempt  int           `json:"attempt,omitempty"`
	Duration time.Duration `json:"duration,omitempty"`
	// QueueWait is time spent waiting for the target module's lease before
	// the command was sent (EvCommandSent: this attempt's wait; EvStepEnd:
	// the step's total across attempts). Zero when the module was free or
	// the engine runs without a Reservations layer.
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	Err       string        `json:"err,omitempty"`
	Note      string        `json:"note,omitempty"`
}

// EventLog is an append-only, concurrency-safe event record stamped with the
// experiment clock (virtual or real).
type EventLog struct {
	clock sim.Clock

	mu     sync.Mutex
	events []Event
	sink   func(Event)
}

// NewEventLog returns an event log using the given clock.
func NewEventLog(clock sim.Clock) *EventLog {
	return &EventLog{clock: clock}
}

// SetSink registers fn to receive every subsequently appended event. The
// sink runs synchronously under the log's lock, after the event is stamped
// and recorded, so it observes events in exactly their sequence order with
// no gaps — the property live streaming resumes depend on. fn must
// therefore be fast and non-blocking (hand off to a queue, as
// portal.EventPublisher does) and must not call back into the log. A nil
// fn detaches the sink.
func (l *EventLog) SetSink(fn func(Event)) {
	l.mu.Lock()
	l.sink = fn
	l.mu.Unlock()
}

// Append records an event, stamping sequence number and time.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	e.Seq = len(l.events)
	e.Time = l.clock.Now()
	l.events = append(l.events, e)
	if l.sink != nil {
		l.sink(e)
	}
	l.mu.Unlock()
}

// Events returns a copy of the log.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of events recorded.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// FilterWorkflow returns the events belonging to the named workflow, in
// their original order. With several workflows interleaved on one log (lanes
// pipelined through a workcell), this recovers one workflow's private view —
// the input for per-workflow module-utilization metrics.
func FilterWorkflow(events []Event, workflow string) []Event {
	var out []Event
	for _, e := range events {
		if e.Workflow == workflow {
			out = append(out, e)
		}
	}
	return out
}

// MergeEvents merges per-campaign (or per-lane) event streams into one
// sequence ordered by (virtual time, source index, per-log seq). Each input
// must be in its own log order (Append order: seq ascending, time
// non-decreasing — what EventLog.Events returns); the merge is then stable
// and total, and the output is monotone in time with every source's seq
// order preserved inside ties.
//
// The tie-break matters: concurrent lanes stamp many events at the same
// virtual instant (a SimClock only moves when everyone sleeps), so sorting
// a concatenation by time alone — sort.Slice is not stable — can reorder
// one campaign's same-instant events against their own seq order, showing a
// subscriber a step_end before its step_start. Merging with (source, seq)
// as the tie-break cannot.
func MergeEvents(logs ...[]Event) []Event {
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	out := make([]Event, 0, total)
	heads := make([]int, len(logs))
	for len(out) < total {
		best := -1
		for i, l := range logs {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			// Strictly earlier time wins; ties keep the lowest source
			// index, and within one source Append order is already seq
			// order.
			if l[heads[i]].Time.Before(logs[best][heads[best]].Time) {
				best = i
			}
		}
		out = append(out, logs[best][heads[best]])
		heads[best]++
	}
	return out
}

// WriteJSON streams the log as JSON lines.
func (l *EventLog) WriteJSON(w io.Writer) error {
	for _, e := range l.Events() {
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("wei: encode event %d: %w", e.Seq, err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ReadEventsJSON parses a JSON-lines event log written by WriteJSON.
func ReadEventsJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("wei: decode event log: %w", err)
		}
		out = append(out, e)
	}
}
