// Package wei reimplements the slice of the WEI science-factory platform
// (Vescovi et al. 2023) that the color-picker application runs on: modules
// that encapsulate instruments and expose actions, workcells declared in
// YAML that assemble modules, declarative workflows that run actions on
// modules, and an execution engine that dispatches workflow steps, retries
// failed commands, and records step timing and a structured event log.
//
// "Each module is represented by a software abstraction that exposes a
// single device and, via interface methods, the actions that the device can
// perform" — Module below is that abstraction.
package wei

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// ModuleState describes a module's availability.
type ModuleState string

// Module states reported by State().
const (
	StateReady ModuleState = "ready"
	StateBusy  ModuleState = "busy"
	StateError ModuleState = "error"
)

// Args carries the keyword arguments of an action. Values must be
// JSON-serializable so that in-process and HTTP transports behave alike.
type Args = map[string]any

// Result carries an action's return payload, JSON-serializable for the same
// reason.
type Result = map[string]any

// ActionFunc executes one action against the underlying device.
type ActionFunc func(ctx context.Context, args Args) (Result, error)

// ActionInfo describes an action for About().
type ActionInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Args        []string `json:"args,omitempty"`
}

// ModuleInfo describes a module for About().
type ModuleInfo struct {
	Name        string       `json:"name"`
	Type        string       `json:"type"`
	Description string       `json:"description,omitempty"`
	Actions     []ActionInfo `json:"actions"`
}

// Module is the WEI software abstraction of one device.
type Module interface {
	// Name returns the module's workcell-unique name (e.g. "pf400").
	Name() string
	// Type returns the capability class (e.g. "manipulator"), used when
	// retargeting workflows to compatible modules.
	Type() string
	// About describes the module and its actions.
	About() ModuleInfo
	// State reports availability.
	State() ModuleState
	// Act performs one action. Implementations must be safe for concurrent
	// calls and should mark themselves busy for the action's duration.
	Act(ctx context.Context, action string, args Args) (Result, error)
}

// ErrUnknownAction reports a request for an action a module does not expose.
type ErrUnknownAction struct {
	Module, Action string
}

// Error implements error.
func (e *ErrUnknownAction) Error() string {
	return fmt.Sprintf("wei: module %q has no action %q", e.Module, e.Action)
}

// Base is an embeddable Module implementation handling action registration,
// dispatch, busy-state tracking and About(). Device packages embed it and
// register their actions.
type Base struct {
	name        string
	typ         string
	description string

	mu      sync.Mutex
	actions map[string]registeredAction
	state   ModuleState
}

type registeredAction struct {
	info ActionInfo
	run  ActionFunc
}

// NewBase returns a Base for a module with the given name and type.
func NewBase(name, typ, description string) *Base {
	return &Base{
		name:        name,
		typ:         typ,
		description: description,
		actions:     make(map[string]registeredAction),
		state:       StateReady,
	}
}

// Name implements Module.
func (b *Base) Name() string { return b.name }

// Type implements Module.
func (b *Base) Type() string { return b.typ }

// Register exposes an action. It panics on duplicate registration, which is
// a programming error.
func (b *Base) Register(info ActionInfo, run ActionFunc) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.actions[info.Name]; dup {
		panic(fmt.Sprintf("wei: duplicate action %q on module %q", info.Name, b.name))
	}
	b.actions[info.Name] = registeredAction{info: info, run: run}
}

// About implements Module.
func (b *Base) About() ModuleInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	info := ModuleInfo{Name: b.name, Type: b.typ, Description: b.description}
	for _, a := range b.actions {
		info.Actions = append(info.Actions, a.info)
	}
	sort.Slice(info.Actions, func(i, j int) bool { return info.Actions[i].Name < info.Actions[j].Name })
	return info
}

// State implements Module.
func (b *Base) State() ModuleState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setState records a state transition.
func (b *Base) setState(s ModuleState) {
	b.mu.Lock()
	b.state = s
	b.mu.Unlock()
}

// Act implements Module: it resolves the action, marks the module busy while
// the action runs, and restores readiness afterwards (error state if the
// action failed).
func (b *Base) Act(ctx context.Context, action string, args Args) (Result, error) {
	b.mu.Lock()
	a, ok := b.actions[action]
	b.mu.Unlock()
	if !ok {
		return nil, &ErrUnknownAction{Module: b.name, Action: action}
	}
	b.setState(StateBusy)
	res, err := a.run(ctx, args)
	if err != nil {
		b.setState(StateError)
		return nil, fmt.Errorf("wei: %s.%s: %w", b.name, action, err)
	}
	b.setState(StateReady)
	return res, nil
}

// Reset returns an errored module to ready, as an operator (or the engine's
// retry path) would.
func (b *Base) Reset() { b.setState(StateReady) }
