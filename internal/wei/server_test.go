package wei

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPNonJSONResponse: a 200 with a garbage body is a transport fault
// (the "server" is not speaking the protocol), classified workcell-down.
func TestHTTPNonJSONResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("<html>this is not a module server</html>"))
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "dev")
	_, err := c.Act(context.Background(), "dev", "ping", nil)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want TransportError", err, err)
	}
	if Classify(err) != ClassWorkcellDown {
		t.Fatalf("classified %v, want workcell_down", Classify(err))
	}
}

// TestHTTPTruncatedResponse: a body cut off mid-JSON is also transport.
func TestHTTPTruncatedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"result": {"pong": tru`))
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "dev")
	if _, err := c.Act(context.Background(), "dev", "ping", nil); Classify(err) != ClassWorkcellDown {
		t.Fatalf("truncated body: err = %v, class %v", err, Classify(err))
	}
}

// TestHTTPOversizedErrorBody: a huge non-200 body must be truncated into the
// error, not slurped whole.
func TestHTTPOversizedErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte(strings.Repeat("x", 1<<20)))
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "dev")
	_, err := c.Act(context.Background(), "dev", "ping", nil)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want StatusError", err, err)
	}
	if len(se.Body) > 1024 {
		t.Fatalf("error body not truncated: %d bytes", len(se.Body))
	}
	if Classify(err) != ClassRetryable {
		t.Fatalf("502 classified %v, want retryable", Classify(err))
	}
}

// TestHTTPUnknownModule404Permanent: the server-side unknown module is a 404
// and classifies permanent — no retries, no rescheduling.
func TestHTTPUnknownModule404Permanent(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "ghost")
	_, err := c.Act(context.Background(), "ghost", "ping", nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 404 {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if Classify(err) != ClassPermanent {
		t.Fatalf("classified %v, want permanent", Classify(err))
	}
}

// TestHTTPActionErrorClassRoundTrip: the server classifies its own module
// errors and the class rides the response, so an unknown action is permanent
// on the client side too while an ordinary device failure stays retryable.
func TestHTTPActionErrorClassRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "dev1")
	ctx := context.Background()

	_, err := c.Act(ctx, "dev1", "no_such_action", nil)
	var re *RemoteActionError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want RemoteActionError", err, err)
	}
	if re.ErrClass != ClassPermanent || Classify(err) != ClassPermanent {
		t.Fatalf("unknown action crossed the wire as %v, want permanent", re.ErrClass)
	}

	_, err = c.Act(ctx, "dev1", "boom", nil)
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want RemoteActionError", err, err)
	}
	if re.ErrClass != ClassRetryable || !strings.Contains(re.Msg, "kaboom") {
		t.Fatalf("device error crossed as class=%v msg=%q", re.ErrClass, re.Msg)
	}
}

// TestHTTPConnectionRefusedWorkcellDown: a dead server classifies as
// workcell-down, the signal the fleet uses to retire a cell.
func TestHTTPConnectionRefusedWorkcellDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	c := NewHTTPClient(url, "dev")
	_, err := c.Act(context.Background(), "dev", "ping", nil)
	if Classify(err) != ClassWorkcellDown {
		t.Fatalf("dead server: err = %v, class %v", err, Classify(err))
	}
	if _, err := c.State(context.Background(), "dev"); Classify(err) != ClassWorkcellDown {
		t.Fatalf("dead server State: class %v", Classify(err))
	}
}

// TestHTTPCanceledContextPermanent: the caller canceling mid-request is a
// permanent error (stop the campaign), not a dead workcell.
func TestHTTPCanceledContextPermanent(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer func() { close(block); srv.Close() }()
	c := NewHTTPClient(srv.URL, "dev")
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	_, err := c.Act(ctx, "dev", "ping", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if Classify(err) != ClassPermanent {
		t.Fatalf("caller-canceled request classified %v (%v), want permanent", Classify(err), err)
	}
}

func TestWorkcellServerResetSwapsModules(t *testing.T) {
	builds := 0
	mkReg := func() *Registry {
		builds++
		reg := NewRegistry()
		reg.Add(fakeModule("dev1", nil))
		return reg
	}
	ws := NewWorkcellServer(mkReg(), ServerOptions{Reset: func() (*Registry, error) {
		return mkReg(), nil
	}})
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()
	wcc := NewWorkcellClient(srv.URL)
	ctx := context.Background()

	h, err := wcc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Session != 1 || len(h.Modules) != 1 {
		t.Fatalf("health = %+v", h)
	}

	// Commands count within the session.
	c := wcc.ModuleClient(0, "dev1")
	if _, err := c.Act(ctx, "dev1", "ping", nil); err != nil {
		t.Fatal(err)
	}
	h, _ = wcc.Health(ctx)
	if h.Commands != 1 {
		t.Fatalf("commands = %d, want 1", h.Commands)
	}

	// Reset: new session, fresh modules, rolled counters.
	info, err := wcc.Reset(ctx, "campaign_a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Session != 2 || len(info.Modules) != 1 {
		t.Fatalf("reset = %+v", info)
	}
	if builds != 2 {
		t.Fatalf("reset did not provision fresh modules (builds=%d)", builds)
	}
	h, _ = wcc.Health(ctx)
	if h.Session != 2 || h.Commands != 0 || h.Campaign != "campaign_a" {
		t.Fatalf("post-reset health = %+v", h)
	}
	if ws.Session() != 2 {
		t.Fatalf("server session = %d", ws.Session())
	}
}

// TestWorkcellServerSessionLogBoundary: the server-side command log rolls at
// each reset, giving every campaign a private event boundary.
func TestWorkcellServerSessionLogBoundary(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	ws := NewWorkcellServer(reg, ServerOptions{})
	srv := httptest.NewServer(ws.Handler())
	defer srv.Close()
	wcc := NewWorkcellClient(srv.URL)
	c := wcc.ModuleClient(0, "dev1")
	ctx := context.Background()

	c.Act(ctx, "dev1", "ping", nil)
	c.Act(ctx, "dev1", "boom", nil)

	var s1 SessionInfo
	if err := wcc.controlGet(ctx, "session", srv.URL+"/session", &s1); err != nil {
		t.Fatal(err)
	}
	if s1.Commands != 2 || len(s1.Events) != 4 { // sent+done, sent+failed
		t.Fatalf("session 1 = commands %d events %d", s1.Commands, len(s1.Events))
	}

	// Without a Reset hook /reset still starts a new session boundary.
	if _, err := wcc.Reset(ctx, "next"); err != nil {
		t.Fatal(err)
	}
	var s2 SessionInfo
	if err := wcc.controlGet(ctx, "session", srv.URL+"/session", &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Session != 2 || s2.Commands != 0 || len(s2.Events) != 0 || s2.Campaign != "next" {
		t.Fatalf("session 2 = %+v", s2)
	}
}

func TestWorkcellClientHealthAgainstDeadServer(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	wcc := NewWorkcellClient(url)
	if _, err := wcc.Health(context.Background()); Classify(err) != ClassWorkcellDown {
		t.Fatalf("dead server health: %v", err)
	}
	if _, err := wcc.Reset(context.Background(), "x"); Classify(err) != ClassWorkcellDown {
		t.Fatalf("dead server reset: %v", err)
	}
}

func TestWorkcellServerResetMethodGuard(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/reset")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reset = %d, want 405", resp.StatusCode)
	}
}

// TestWorkcellClientControlPlaneNon200WorkcellDown: the control plane has
// one policy for any non-200 — the cell cannot take campaigns, so both
// /healthz and /reset classify it workcell-down (module commands, by
// contrast, treat 5xx as retryable in place).
func TestWorkcellClientControlPlaneNon200WorkcellDown(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "reset hook failed", http.StatusInternalServerError)
	}))
	defer srv.Close()
	wcc := NewWorkcellClient(srv.URL)
	if _, err := wcc.Reset(context.Background(), "c01"); Classify(err) != ClassWorkcellDown {
		t.Fatalf("500 reset classified %v (%v), want workcell_down", Classify(err), err)
	}
	if _, err := wcc.Health(context.Background()); Classify(err) != ClassWorkcellDown {
		t.Fatalf("500 health classified %v (%v), want workcell_down", Classify(err), err)
	}
}
