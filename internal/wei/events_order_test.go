package wei

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"colormatch/internal/sim"
)

// Property tests for MergeEvents: merging per-lane event logs must produce a
// stream that is (1) monotone non-decreasing in virtual time, (2) seq-order
// preserving within each source — a step_end must never surface before its
// own step_start just because both carry the same virtual timestamp — and
// (3) a permutation of the inputs (nothing dropped, nothing duplicated).
//
// These are exactly the properties a naive `sort.Slice(all, by time)` over
// the concatenation violates: sort.Slice is unstable, and SimClock lanes
// stamp long runs of events at identical virtual instants, so same-instant
// reordering is not a corner case but the common case.

// checkMerged asserts the three merge properties against the source logs.
func checkMerged(t *testing.T, merged []Event, logs [][]Event) {
	t.Helper()
	total := 0
	for _, l := range logs {
		total += len(l)
	}
	if len(merged) != total {
		t.Fatalf("merge dropped or duplicated: %d events out, %d in", len(merged), total)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("time went backwards at %d: %v after %v", i, merged[i].Time, merged[i-1].Time)
		}
	}
	// Per-source subsequence check: replaying the merge must consume every
	// source strictly in its own order. Sources are distinguished by the
	// Workflow field, which the generators below keep unique per log.
	heads := map[string]int{}
	byLane := map[string][]Event{}
	for _, l := range logs {
		if len(l) > 0 {
			byLane[l[0].Workflow] = l
		}
	}
	for i, e := range merged {
		src, ok := byLane[e.Workflow]
		if !ok {
			t.Fatalf("merged event %d from unknown lane %q", i, e.Workflow)
		}
		h := heads[e.Workflow]
		if h >= len(src) {
			t.Fatalf("lane %q produced more events than its log holds", e.Workflow)
		}
		if src[h].Seq != e.Seq || src[h].Kind != e.Kind {
			t.Fatalf("lane %q out of order: merged[%d] has seq %d, lane expects seq %d",
				e.Workflow, i, e.Seq, src[h].Seq)
		}
		heads[e.Workflow]++
	}
}

// TestMergeEventsTieHeavy drives the worst case directly: many lanes whose
// timestamps collide constantly, with a seeded shuffle of batch sizes.
func TestMergeEventsTieHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		lanes := 2 + rng.Intn(4)
		logs := make([][]Event, lanes)
		t0 := sim.Epoch
		for lane := range logs {
			clockTime := t0
			n := 5 + rng.Intn(40)
			for seq := 0; seq < n; seq++ {
				// Advance virtual time rarely, so most neighbours within a
				// lane — and across lanes — share an instant.
				if rng.Intn(4) == 0 {
					clockTime = clockTime.Add(time.Duration(1+rng.Intn(3)) * time.Second)
				}
				kind := EvStepStart
				if seq%2 == 1 {
					kind = EvStepEnd
				}
				logs[lane] = append(logs[lane], Event{
					Seq:      seq,
					Time:     clockTime,
					Kind:     kind,
					Workflow: fmt.Sprintf("lane-%d", lane),
				})
			}
		}
		checkMerged(t, MergeEvents(logs...), logs)
	}
}

// TestMergeEventsPairedSteps asserts the user-visible symptom the merge
// exists to prevent: for every lane, each step's start precedes its end in
// the merged stream even when both share one virtual instant.
func TestMergeEventsPairedSteps(t *testing.T) {
	const lanes, steps = 6, 30
	logs := make([][]Event, lanes)
	for lane := range logs {
		for s := 0; s < steps; s++ {
			// start and end deliberately share a timestamp, and runs of 5
			// consecutive steps share one instant across all lanes.
			at := sim.Epoch.Add(time.Duration(s/5) * time.Minute)
			logs[lane] = append(logs[lane],
				Event{Seq: 2 * s, Time: at, Kind: EvStepStart, Step: fmt.Sprintf("s%d", s), Workflow: fmt.Sprintf("lane-%d", lane)},
				Event{Seq: 2*s + 1, Time: at, Kind: EvStepEnd, Step: fmt.Sprintf("s%d", s), Workflow: fmt.Sprintf("lane-%d", lane)},
			)
		}
	}
	merged := MergeEvents(logs...)
	open := map[string]bool{} // lane/step → start seen
	for i, e := range merged {
		key := e.Workflow + "/" + e.Step
		switch e.Kind {
		case EvStepStart:
			open[key] = true
		case EvStepEnd:
			if !open[key] {
				t.Fatalf("merged[%d]: %s ended before it started", i, key)
			}
			delete(open, key)
		}
	}
	checkMerged(t, merged, logs)
}

// TestMergeEventsFromConcurrentLogs builds the inputs the way fleet does:
// concurrent goroutines appending to per-lane EventLogs that share one
// SimClock, so the timestamps carry real scheduler-order ties. Each log is
// internally consistent by construction (Append stamps under the lock); the
// merge must keep it that way.
func TestMergeEventsFromConcurrentLogs(t *testing.T) {
	clock := sim.NewSimClock()
	const lanes = 4
	const perLane = 60
	clock.AddWorker(lanes)
	logsObj := make([]*EventLog, lanes)
	for i := range logsObj {
		logsObj[i] = NewEventLog(clock)
	}
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer clock.DoneWorker()
			name := fmt.Sprintf("lane-%d", lane)
			for s := 0; s < perLane; s++ {
				logsObj[lane].Append(Event{Kind: EvStepStart, Step: fmt.Sprintf("s%d", s), Workflow: name})
				if s%3 == lane%3 {
					clock.Sleep(time.Duration(1+s%4) * time.Second)
				}
				logsObj[lane].Append(Event{Kind: EvStepEnd, Step: fmt.Sprintf("s%d", s), Workflow: name})
			}
		}(lane)
	}
	wg.Wait()
	logs := make([][]Event, lanes)
	for i, l := range logsObj {
		logs[i] = l.Events()
	}
	checkMerged(t, MergeEvents(logs...), logs)
}

// TestMergeEventsEdgeCases: empty inputs, single log, all-one-instant.
func TestMergeEventsEdgeCases(t *testing.T) {
	if got := MergeEvents(); len(got) != 0 {
		t.Fatalf("merge of nothing = %d events", len(got))
	}
	if got := MergeEvents(nil, nil, []Event{}); len(got) != 0 {
		t.Fatalf("merge of empties = %d events", len(got))
	}
	single := []Event{
		{Seq: 0, Time: sim.Epoch, Kind: EvStepStart, Workflow: "lane-0"},
		{Seq: 1, Time: sim.Epoch, Kind: EvStepEnd, Workflow: "lane-0"},
	}
	checkMerged(t, MergeEvents(single), [][]Event{single})

	// Every event in every lane at the same instant: output must be exactly
	// lane 0's log, then lane 1's, each in seq order.
	flat := make([][]Event, 3)
	for lane := range flat {
		for s := 0; s < 10; s++ {
			flat[lane] = append(flat[lane], Event{Seq: s, Time: sim.Epoch, Kind: EvNote, Workflow: fmt.Sprintf("lane-%d", lane)})
		}
	}
	merged := MergeEvents(flat...)
	checkMerged(t, merged, flat)
	for i, e := range merged {
		wantLane, wantSeq := i/10, i%10
		if e.Workflow != fmt.Sprintf("lane-%d", wantLane) || e.Seq != wantSeq {
			t.Fatalf("all-ties merge[%d] = %s seq %d, want lane-%d seq %d", i, e.Workflow, e.Seq, wantLane, wantSeq)
		}
	}
}
