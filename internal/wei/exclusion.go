package wei

import (
	"fmt"
	"time"
)

// VerifyModuleExclusion checks one or more event logs for the module-lease
// invariant: no two commands hold the same module at overlapping virtual
// times. A command's occupancy window is the half-open [EvCommandSent,
// EvCommandDone/EvCommandFailed) interval — a release and the next grant may
// legitimately share a timestamp on the virtual clock.
//
// Pass each log separately (e.g. one per campaign pipelined through a
// workcell): send/completion pairing relies on append order, which is only
// meaningful within a single log, while the overlap check runs across the
// union. It returns nil when the invariant holds, or an error describing the
// first violation found.
func VerifyModuleExclusion(logs ...[]Event) error {
	type window struct {
		start, end time.Time
		workflow   string
	}
	closed := map[string][]window{}
	for _, events := range logs {
		type key struct {
			module, workflow, step string
			attempt                int
		}
		open := map[key]time.Time{}
		for _, e := range events {
			if e.Module == "" {
				continue
			}
			k := key{e.Module, e.Workflow, e.Step, e.Attempt}
			switch e.Kind {
			case EvCommandSent:
				if prev, dup := open[k]; dup {
					return fmt.Errorf("wei: module %s: %s/%s attempt %d re-sent at %v while still in flight since %v",
						e.Module, e.Workflow, e.Step, e.Attempt, e.Time, prev)
				}
				open[k] = e.Time
			case EvCommandDone, EvCommandFailed:
				start, ok := open[k]
				if !ok {
					return fmt.Errorf("wei: module %s: completion of %s/%s attempt %d at %v without a matching send",
						e.Module, e.Workflow, e.Step, e.Attempt, e.Time)
				}
				delete(open, k)
				closed[e.Module] = append(closed[e.Module], window{start: start, end: e.Time, workflow: e.Workflow})
			}
		}
		for k, start := range open {
			return fmt.Errorf("wei: module %s: command %s/%s attempt %d sent at %v never completed",
				k.module, k.workflow, k.step, k.attempt, start)
		}
	}
	for mod, ws := range closed {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				a, b := ws[i], ws[j]
				if a.start.Before(b.end) && b.start.Before(a.end) {
					return fmt.Errorf("wei: module %s: overlapping occupancy [%v, %v) by %s and [%v, %v) by %s",
						mod, a.start, a.end, a.workflow, b.start, b.end, b.workflow)
				}
			}
		}
	}
	return nil
}
