package wei

import (
	"context"
	"errors"
	"testing"
	"time"

	"colormatch/internal/sim"
)

// TestWithLogForksLogSharesRest covers the engine-pooling seam: a forked
// engine writes to its own event log while reusing the client, clock, fault
// injector and retry policy.
func TestWithLogForksLogSharesRest(t *testing.T) {
	eng, clock := testEngine(t, nil)
	eng.MaxAttempts = 2
	eng.RetryDelay = time.Second

	fork := eng.WithLog(NewEventLog(clock))
	if fork.Log == eng.Log {
		t.Fatal("fork shares the event log")
	}
	if fork.Client != eng.Client || fork.Clock != eng.Clock {
		t.Fatal("fork does not share client/clock")
	}
	if fork.MaxAttempts != 2 || fork.RetryDelay != time.Second {
		t.Fatal("fork lost retry policy")
	}

	if _, err := fork.RunWorkflow(context.Background(), wfOneStep(), nil); err != nil {
		t.Fatal(err)
	}
	if n := len(fork.Log.Events()); n == 0 {
		t.Fatal("fork log empty")
	}
	if n := len(eng.Log.Events()); n != 0 {
		t.Fatalf("original log received %d events from the fork", n)
	}
}

func TestRunWorkflowCanceledBeforeStart(t *testing.T) {
	eng, _ := testEngine(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec, err := eng.RunWorkflow(ctx, wfOneStep(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rec.Steps) != 0 {
		t.Fatalf("executed %d steps after cancellation", len(rec.Steps))
	}
}

// TestRunWorkflowCanceledBetweenSteps cancels during the first step's device
// work; the workflow must stop at the step boundary instead of running the
// remaining steps.
func TestRunWorkflowCanceledBetweenSteps(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBase("dev", "slow", "")
	b.Register(ActionInfo{Name: "work"}, func(ctx context.Context, args Args) (Result, error) {
		clock.Sleep(30 * time.Second)
		cancel()
		return Result{"ok": true}, nil
	})
	reg.Add(b)
	eng := NewEngine(reg, clock, NewEventLog(clock))

	rec, err := eng.RunWorkflow(ctx, wfOneStep(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rec.Steps) != 1 {
		t.Fatalf("executed %d steps, want 1 (stop at boundary)", len(rec.Steps))
	}
	if rec.Steps[0].Err != "" {
		t.Fatalf("first step should have succeeded: %q", rec.Steps[0].Err)
	}
}
