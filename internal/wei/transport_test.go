package wei

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colormatch/internal/sim"
)

func newHTTPFixture(t *testing.T) (*HTTPClient, *Registry) {
	t.Helper()
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	reg.Add(fakeModule("dev2", nil))
	srv := httptest.NewServer(ServeModules(reg))
	t.Cleanup(srv.Close)
	return NewHTTPClient(srv.URL, "dev1", "dev2"), reg
}

func TestHTTPActRoundTrip(t *testing.T) {
	c, _ := newHTTPFixture(t)
	res, err := c.Act(context.Background(), "dev1", "ping", Args{"echo": "over http"})
	if err != nil {
		t.Fatal(err)
	}
	if res["pong"] != true || res["echo"] != "over http" {
		t.Fatalf("result = %#v", res)
	}
}

func TestHTTPActionErrorPropagates(t *testing.T) {
	c, _ := newHTTPFixture(t)
	_, err := c.Act(context.Background(), "dev1", "boom", nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPUnknownActionErrorPropagates(t *testing.T) {
	c, _ := newHTTPFixture(t)
	_, err := c.Act(context.Background(), "dev1", "nope", nil)
	if err == nil || !strings.Contains(err.Error(), "no action") {
		t.Fatalf("err = %v", err)
	}
}

func TestHTTPUnknownModule(t *testing.T) {
	c, _ := newHTTPFixture(t)
	if _, err := c.Act(context.Background(), "ghost", "ping", nil); err == nil {
		t.Fatal("unknown module accepted")
	}
	// Module known to client but not to server.
	c.BaseURL["ghost"] = c.BaseURL["dev1"]
	if _, err := c.Act(context.Background(), "ghost", "ping", nil); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatal("server-side unknown module not a 404")
	}
}

func TestHTTPStateAndAbout(t *testing.T) {
	c, _ := newHTTPFixture(t)
	ctx := context.Background()
	st, err := c.State(ctx, "dev2")
	if err != nil || st != StateReady {
		t.Fatalf("State = %v, %v", st, err)
	}
	info, err := c.About(ctx, "dev1")
	if err != nil || info.Name != "dev1" || len(info.Actions) != 2 {
		t.Fatalf("About = %+v, %v", info, err)
	}
}

func TestHTTPEngineEndToEnd(t *testing.T) {
	// The engine must behave identically over HTTP as in-process.
	reg := NewRegistry()
	clock := sim.NewSimClock()
	reg.Add(slowModule("dev", clock, 10*time.Second))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()

	client := NewHTTPClient(srv.URL, "dev")
	eng := NewEngine(client, clock, NewEventLog(clock))
	rec, err := eng.RunWorkflow(context.Background(), &WorkflowSpec{
		Name:  "http_wf",
		Steps: []Step{{Name: "s", Module: "dev", Action: "work"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Steps[0].Result["ok"] != true {
		t.Fatalf("result = %#v", rec.Steps[0].Result)
	}
	if rec.Steps[0].Duration != 10*time.Second {
		t.Fatalf("virtual duration over HTTP = %v", rec.Steps[0].Duration)
	}
}

func TestHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPBadPaths(t *testing.T) {
	reg := NewRegistry()
	reg.Add(fakeModule("dev1", nil))
	srv := httptest.NewServer(ServeModules(reg))
	defer srv.Close()
	for _, path := range []string{"/modules/", "/modules/dev1", "/modules/dev1/unknown", "/modules/ghost/state"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Errorf("path %q returned 200", path)
		}
	}
}
