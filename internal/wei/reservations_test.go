package wei

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"colormatch/internal/sim"
)

func TestReservationsFreeModuleAcquiresImmediately(t *testing.T) {
	clock := sim.NewSimClock()
	r := NewReservations(clock)
	if wait := r.Acquire("pf400"); wait != 0 {
		t.Fatalf("free module waited %v", wait)
	}
	r.Release("pf400")
	u := r.Usage()["pf400"]
	if u.Acquires != 1 || u.QueueWait != 0 || u.MaxQueue != 0 {
		t.Fatalf("usage = %+v", u)
	}
}

func TestReservationsIndependentModules(t *testing.T) {
	r := NewReservations(sim.NewSimClock())
	if r.Acquire("pf400") != 0 {
		t.Fatal("pf400 not free")
	}
	// A different module must not queue behind pf400's holder.
	if r.Acquire("camera") != 0 {
		t.Fatal("camera queued behind pf400")
	}
	r.Release("camera")
	r.Release("pf400")
}

func TestReservationsReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReservations(sim.NewSimClock()).Release("pf400")
}

// TestReservationsQueueWaitInVirtualTime drives two workers through one
// module on a virtual clock: the holder sleeps 10 minutes of robot time, so
// the waiter's measured queue wait must be 10 minutes even though the test
// runs in microseconds of host time.
func TestReservationsQueueWaitInVirtualTime(t *testing.T) {
	clock := sim.NewSimClock()
	r := NewReservations(clock)
	const hold = 10 * time.Minute

	clock.AddWorker(2)
	var wait time.Duration
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		defer clock.DoneWorker()
		r.Acquire("ot2")
		close(started)
		clock.Sleep(hold)
		r.Release("ot2")
	}()
	go func() {
		defer wg.Done()
		defer clock.DoneWorker()
		<-started
		wait = r.Acquire("ot2")
		r.Release("ot2")
	}()
	wg.Wait()
	if wait != hold {
		t.Fatalf("queue wait = %v, want %v", wait, hold)
	}
	u := r.Usage()["ot2"]
	if u.Acquires != 2 || u.QueueWait != hold || u.Busy != hold || u.MaxQueue != 1 {
		t.Fatalf("usage = %+v", u)
	}
}

// TestReservationsFIFOFair queues many waiters behind a holder and checks
// they are granted the module strictly in arrival order.
func TestReservationsFIFOFair(t *testing.T) {
	clock := sim.NewSimClock()
	r := NewReservations(clock)
	const n = 8

	r.Acquire("pf400")
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Acquire("pf400")
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r.Release("pf400")
		}(i)
		// Wait until waiter i is actually parked in the queue before
		// starting the next, so arrival order is deterministic.
		waitForQueueDepth(t, r, "pf400", i+1)
	}
	r.Release("pf400")
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
	if u := r.Usage()["pf400"]; u.MaxQueue != n {
		t.Fatalf("max queue = %d, want %d", u.MaxQueue, n)
	}
}

func waitForQueueDepth(t *testing.T, r *Reservations, module string, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		l := r.mods[module]
		n := 0
		if l != nil {
			n = len(l.queue)
		}
		r.mu.Unlock()
		if n >= depth {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", n, depth)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestEngineConcurrentWorkflowsMutuallyExclusive is the tentpole invariant:
// two workflows running concurrently on one engine (shared event log, shared
// reservations) never occupy the same module at the same virtual time, and
// the queue wait shows up in step records and events.
func TestEngineConcurrentWorkflowsMutuallyExclusive(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	reg.Add(slowModule("pf400", clock, 30*time.Second))
	reg.Add(slowModule("camera", clock, 2*time.Second))
	eng := NewEngine(reg, clock, NewEventLog(clock))
	eng.Reservations = NewReservations(clock)

	wf := func(name string) *WorkflowSpec {
		return &WorkflowSpec{Name: name, Steps: []Step{
			{Name: "move", Module: "pf400", Action: "work"},
			{Name: "shoot", Module: "camera", Action: "work"},
			{Name: "move_back", Module: "pf400", Action: "work"},
		}}
	}

	const loops = 3
	clock.AddWorker(2)
	var wg sync.WaitGroup
	var recMu sync.Mutex
	var queued time.Duration
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer clock.DoneWorker()
			for i := 0; i < loops; i++ {
				rec, err := eng.RunWorkflow(context.Background(), wf(fmt.Sprintf("wf%d", w)), nil)
				if err != nil {
					t.Errorf("workflow %d: %v", w, err)
					return
				}
				recMu.Lock()
				for _, s := range rec.Steps {
					queued += s.QueueWait
				}
				recMu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	events := eng.Log.Events()
	if err := VerifyModuleExclusion(events); err != nil {
		t.Fatal(err)
	}

	// With two workflows fighting over one 30s arm, somebody must queue, and
	// the wait must be robot time (tens of seconds), not host microseconds.
	if queued < 30*time.Second {
		t.Fatalf("total queue wait %v, expected >= 30s of contention", queued)
	}
	var evQueued time.Duration
	for _, e := range events {
		if e.Kind == EvStepEnd {
			evQueued += e.QueueWait
		}
	}
	if evQueued != queued {
		t.Fatalf("event-log queue wait %v != step-record total %v", evQueued, queued)
	}
	usage := eng.Reservations.Usage()
	if usage["pf400"].QueueWait != queued {
		t.Fatalf("reservation usage wait %v != %v", usage["pf400"].QueueWait, queued)
	}
}

// TestVerifyModuleExclusionDetectsOverlap feeds the checker a hand-built
// violating log to make sure failures are actually detectable.
func TestVerifyModuleExclusionDetectsOverlap(t *testing.T) {
	at := func(d time.Duration) time.Time { return sim.Epoch.Add(d) }
	bad := []Event{
		{Kind: EvCommandSent, Workflow: "a", Step: "s", Module: "pf400", Attempt: 1, Time: at(0)},
		{Kind: EvCommandDone, Workflow: "a", Step: "s", Module: "pf400", Attempt: 1, Time: at(30 * time.Second)},
	}
	overlapping := []Event{
		{Kind: EvCommandSent, Workflow: "b", Step: "s", Module: "pf400", Attempt: 1, Time: at(10 * time.Second)},
		{Kind: EvCommandDone, Workflow: "b", Step: "s", Module: "pf400", Attempt: 1, Time: at(20 * time.Second)},
	}
	if err := VerifyModuleExclusion(bad, overlapping); err == nil {
		t.Fatal("overlapping occupancy not detected")
	}
	// Sharing a boundary timestamp is legal: windows are half-open.
	adjacent := []Event{
		{Kind: EvCommandSent, Workflow: "c", Step: "s", Module: "pf400", Attempt: 1, Time: at(30 * time.Second)},
		{Kind: EvCommandDone, Workflow: "c", Step: "s", Module: "pf400", Attempt: 1, Time: at(40 * time.Second)},
	}
	if err := VerifyModuleExclusion(bad, adjacent); err != nil {
		t.Fatalf("adjacent windows rejected: %v", err)
	}
	// A send that never completes must be flagged too.
	dangling := []Event{
		{Kind: EvCommandSent, Workflow: "d", Step: "s", Module: "pf400", Attempt: 1, Time: at(time.Hour)},
	}
	if err := VerifyModuleExclusion(dangling); err == nil {
		t.Fatal("dangling send not detected")
	}
}
