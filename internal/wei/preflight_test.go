package wei

import (
	"context"
	"strings"
	"testing"

	"colormatch/internal/sim"
)

func TestPreflightAcceptsValidWorkflow(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	reg.Add(fakeModule("dev", nil))
	eng := NewEngine(reg, clock, NewEventLog(clock))
	wf := &WorkflowSpec{Name: "w", Steps: []Step{
		{Name: "s1", Module: "dev", Action: "ping"},
		{Name: "s2", Module: "dev", Action: "boom"},
	}}
	if err := eng.Preflight(context.Background(), wf); err != nil {
		t.Fatal(err)
	}
	// Preflight must not have executed anything.
	if eng.Log.Len() != 0 {
		t.Fatalf("preflight logged %d events", eng.Log.Len())
	}
}

func TestPreflightRejectsUnknownAction(t *testing.T) {
	clock := sim.NewSimClock()
	reg := NewRegistry()
	reg.Add(fakeModule("dev", nil))
	eng := NewEngine(reg, clock, NewEventLog(clock))
	wf := &WorkflowSpec{Name: "w", Steps: []Step{
		{Name: "s", Module: "dev", Action: "teleport"},
	}}
	err := eng.Preflight(context.Background(), wf)
	if err == nil || !strings.Contains(err.Error(), "teleport") {
		t.Fatalf("err = %v", err)
	}
}

func TestPreflightRejectsUnknownModule(t *testing.T) {
	clock := sim.NewSimClock()
	eng := NewEngine(NewRegistry(), clock, NewEventLog(clock))
	wf := &WorkflowSpec{Name: "w", Steps: []Step{
		{Name: "s", Module: "ghost", Action: "ping"},
	}}
	if err := eng.Preflight(context.Background(), wf); err == nil {
		t.Fatal("unknown module accepted")
	}
}
