package wei

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colormatch/internal/sim"
	"colormatch/internal/yamlite"
)

// slowModule sleeps on the clock for each action, simulating device work.
func slowModule(name string, clock sim.Clock, d time.Duration) *Base {
	b := NewBase(name, "slow", "")
	b.Register(ActionInfo{Name: "work"}, func(ctx context.Context, args Args) (Result, error) {
		clock.Sleep(d)
		return Result{"ok": true}, nil
	})
	return b
}

func testEngine(t *testing.T, faults *sim.Injector) (*Engine, *sim.SimClock) {
	t.Helper()
	clock := sim.NewSimClock()
	reg := NewRegistry()
	reg.Add(slowModule("dev", clock, 30*time.Second))
	eng := NewEngine(reg, clock, NewEventLog(clock))
	eng.Faults = faults
	return eng, clock
}

func wfOneStep() *WorkflowSpec {
	return &WorkflowSpec{Name: "wf_test", Steps: []Step{
		{Name: "s1", Module: "dev", Action: "work"},
		{Name: "s2", Module: "dev", Action: "work"},
	}}
}

func TestEngineRunsStepsInOrder(t *testing.T) {
	eng, clock := testEngine(t, nil)
	rec, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Steps) != 2 {
		t.Fatalf("steps = %d", len(rec.Steps))
	}
	if rec.Duration != 60*time.Second {
		t.Fatalf("workflow duration %v, want 60s", rec.Duration)
	}
	if !rec.Steps[1].Start.Equal(rec.Steps[0].End) {
		t.Fatalf("steps not sequential: %v vs %v", rec.Steps[1].Start, rec.Steps[0].End)
	}
	if clock.Now().Sub(sim.Epoch) != 60*time.Second {
		t.Fatalf("clock advanced %v", clock.Now().Sub(sim.Epoch))
	}
	// Event log must show start/end pairs and two completed commands.
	var done, sent int
	for _, e := range eng.Log.Events() {
		switch e.Kind {
		case EvCommandDone:
			done++
		case EvCommandSent:
			sent++
		}
	}
	if done != 2 || sent != 2 {
		t.Fatalf("done=%d sent=%d", done, sent)
	}
}

func TestEngineRetriesTransientFaults(t *testing.T) {
	// 60% receive-fault probability: with 3 attempts most steps succeed;
	// run enough workflows that at least one retry must have happened.
	faults := sim.NewInjector(sim.FaultPlan{PReceive: 0.6}, sim.NewRNG(5))
	eng, _ := testEngine(t, faults)
	eng.MaxAttempts = 10
	succeeded := 0
	retried := 0
	for i := 0; i < 20; i++ {
		rec, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil)
		if err == nil {
			succeeded++
		}
		for _, s := range rec.Steps {
			if s.Attempts > 1 {
				retried++
			}
		}
	}
	if succeeded != 20 {
		t.Fatalf("only %d/20 workflows succeeded with retries", succeeded)
	}
	if retried == 0 {
		t.Fatal("no step ever retried at 60% fault rate")
	}
	if faults.Total() == 0 {
		t.Fatal("injector reports no faults")
	}
}

func TestEngineFailsAfterMaxAttempts(t *testing.T) {
	faults := sim.NewInjector(sim.FaultPlan{PReceive: 1}, sim.NewRNG(1))
	eng, _ := testEngine(t, faults)
	rec, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil)
	if !errors.Is(err, ErrStepFailed) {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, sim.ErrInjected) {
		t.Fatalf("err does not wrap injected fault: %v", err)
	}
	// First step fails; second never runs.
	if len(rec.Steps) != 1 || rec.Steps[0].Attempts != 3 {
		t.Fatalf("steps = %+v", rec.Steps)
	}
	var failed int
	for _, e := range eng.Log.Events() {
		if e.Kind == EvCommandFailed {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("failed command events = %d, want 3", failed)
	}
}

func TestEngineReportFaultRunsAction(t *testing.T) {
	// A report fault executes the action but loses the acknowledgment: the
	// device worked (clock advanced) yet the command counts as failed.
	faults := sim.NewInjector(sim.FaultPlan{PReport: 1}, sim.NewRNG(1))
	eng, clock := testEngine(t, faults)
	eng.MaxAttempts = 1
	_, err := eng.RunWorkflow(context.Background(),
		&WorkflowSpec{Name: "w", Steps: []Step{{Name: "s", Module: "dev", Action: "work"}}}, nil)
	if err == nil {
		t.Fatal("report fault not surfaced")
	}
	if clock.Now().Sub(sim.Epoch) < 30*time.Second {
		t.Fatal("action did not run on report fault")
	}
}

func TestEngineUnresolvedParamFailsFast(t *testing.T) {
	eng, _ := testEngine(t, nil)
	wf := &WorkflowSpec{Name: "w", Steps: []Step{
		{Name: "s", Module: "dev", Action: "work", Args: yamlite.Map{"v": "$missing"}},
	}}
	if _, err := eng.RunWorkflow(context.Background(), wf, nil); err == nil {
		t.Fatal("unresolved param accepted")
	}
	// The failure-path step_end must carry the same Module/Action fields as
	// every other step_end, so event consumers can key on them uniformly.
	found := false
	for _, e := range eng.Log.Events() {
		if e.Kind == EvStepEnd && e.Step == "s" {
			found = true
			if e.Module != "dev" || e.Action != "work" || e.Err == "" {
				t.Fatalf("substitution-failure step_end = %+v, want module/action/err populated", e)
			}
		}
	}
	if !found {
		t.Fatal("no step_end event for the failed step")
	}
}

func TestEngineWritesRunRecordFile(t *testing.T) {
	eng, _ := testEngine(t, nil)
	dir := t.TempDir()
	eng.RecordDir = dir
	if _, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("record files = %v, %v", entries, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Workflow != "wf_test" || len(rec.Steps) != 2 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Steps[0].Duration != 30*time.Second {
		t.Fatalf("step duration %v", rec.Steps[0].Duration)
	}
}

func TestEventLogJSONRoundTrip(t *testing.T) {
	eng, _ := testEngine(t, nil)
	if _, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Log.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	events, err := ReadEventsJSON(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != eng.Log.Len() {
		t.Fatalf("round trip %d events, want %d", len(events), eng.Log.Len())
	}
	for i, e := range eng.Log.Events() {
		if events[i].Kind != e.Kind || !events[i].Time.Equal(e.Time) {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestEngineStepTimingMatchesClock(t *testing.T) {
	eng, _ := testEngine(t, nil)
	rec, err := eng.RunWorkflow(context.Background(), wfOneStep(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Steps {
		if s.Duration != 30*time.Second {
			t.Fatalf("step %q duration %v", s.Name, s.Duration)
		}
		if !s.End.Equal(s.Start.Add(s.Duration)) {
			t.Fatalf("step %q end != start+duration", s.Name)
		}
	}
}
