package wei

import (
	"fmt"
	"sync"
	"testing"

	"colormatch/internal/sim"
)

// TestEventLogInterleavedWorkflows hammers one log from several goroutines,
// each appending its own workflow's numbered events, and checks the
// invariants lane pipelining leans on: sequence numbers are unique and
// dense, every appended event survives, and FilterWorkflow recovers each
// workflow's events in their original per-workflow order.
func TestEventLogInterleavedWorkflows(t *testing.T) {
	const (
		workflows = 8
		perWF     = 200
	)
	log := NewEventLog(sim.NewSimClock())
	var wg sync.WaitGroup
	for w := 0; w < workflows; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("wf%d", w)
			for i := 0; i < perWF; i++ {
				log.Append(Event{Kind: EvNote, Workflow: name, Attempt: i})
			}
		}(w)
	}
	wg.Wait()

	events := log.Events()
	if len(events) != workflows*perWF {
		t.Fatalf("len = %d, want %d", len(events), workflows*perWF)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: sequence not dense", i, e.Seq)
		}
	}
	for w := 0; w < workflows; w++ {
		name := fmt.Sprintf("wf%d", w)
		got := FilterWorkflow(events, name)
		if len(got) != perWF {
			t.Fatalf("workflow %s: %d events, want %d", name, len(got), perWF)
		}
		lastSeq := -1
		for i, e := range got {
			if e.Attempt != i {
				t.Fatalf("workflow %s: event %d out of order (attempt %d): per-workflow order lost", name, i, e.Attempt)
			}
			if e.Seq <= lastSeq {
				t.Fatalf("workflow %s: seq went %d -> %d", name, lastSeq, e.Seq)
			}
			lastSeq = e.Seq
		}
	}
}

func TestFilterWorkflowEmpty(t *testing.T) {
	events := []Event{
		{Kind: EvNote, Workflow: "a"},
		{Kind: EvNote}, // engine-level event with no workflow
	}
	if got := FilterWorkflow(events, "missing"); got != nil {
		t.Fatalf("FilterWorkflow(missing) = %v", got)
	}
	if got := FilterWorkflow(events, "a"); len(got) != 1 {
		t.Fatalf("FilterWorkflow(a) = %v", got)
	}
}
