package sim

import (
	"sync"
	"testing"
	"time"
)

func TestSimClockStartsAtEpoch(t *testing.T) {
	c := NewSimClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestSimClockSleepAdvances(t *testing.T) {
	c := NewSimClock()
	c.Sleep(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !c.Now().Equal(want) {
		t.Fatalf("after Sleep: Now() = %v, want %v", c.Now(), want)
	}
}

func TestSimClockZeroAndNegativeSleep(t *testing.T) {
	c := NewSimClock()
	c.Sleep(0)
	c.Sleep(-time.Hour)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero/negative sleep moved the clock to %v", c.Now())
	}
}

func TestSimClockSequentialSleepsAccumulate(t *testing.T) {
	c := NewSimClock()
	total := time.Duration(0)
	for i := 1; i <= 10; i++ {
		d := time.Duration(i) * time.Second
		c.Sleep(d)
		total += d
	}
	if got := c.Now().Sub(Epoch); got != total {
		t.Fatalf("accumulated %v, want %v", got, total)
	}
}

func TestSimClockAdvanceWakesSleepers(t *testing.T) {
	c := NewSimClock()
	c.AddWorker(2) // ensure Sleep blocks rather than self-advancing
	done := make(chan time.Time, 1)
	go func() {
		c.Sleep(5 * time.Minute)
		done <- c.Now()
	}()
	// Give the sleeper a moment to register, then advance past its deadline.
	for i := 0; i < 100; i++ {
		c.mu.Lock()
		n := len(c.sleeper)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Advance(10 * time.Minute)
	select {
	case at := <-done:
		if at.Before(Epoch.Add(5 * time.Minute)) {
			t.Fatalf("sleeper woke at %v, before its deadline", at)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke after Advance")
	}
}

func TestSimClockParallelWorkersOverlap(t *testing.T) {
	// Two workers each sleeping 1 hour concurrently must finish at
	// Epoch+1h (overlap), not Epoch+2h (serialization).
	c := NewSimClock()
	c.AddWorker(2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Hour)
			c.DoneWorker()
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(Epoch); got != time.Hour {
		t.Fatalf("parallel sleeps advanced clock by %v, want 1h", got)
	}
}

func TestSimClockStaggeredWorkers(t *testing.T) {
	// Worker A sleeps 10m then 20m; worker B sleeps 25m once.
	// Total virtual span must be max(30m, 25m) = 30m.
	c := NewSimClock()
	c.AddWorker(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Sleep(10 * time.Minute)
		c.Sleep(20 * time.Minute)
		c.DoneWorker()
	}()
	go func() {
		defer wg.Done()
		c.Sleep(25 * time.Minute)
		c.DoneWorker()
	}()
	wg.Wait()
	if got := c.Now().Sub(Epoch); got != 30*time.Minute {
		t.Fatalf("staggered sleeps advanced clock by %v, want 30m", got)
	}
}

func TestSimClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSimClock().Advance(-time.Second)
}

func TestRealClockSleepIsApproximatelyReal(t *testing.T) {
	start := time.Now()
	RealClock{}.Sleep(10 * time.Millisecond)
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("RealClock.Sleep returned after %v", el)
	}
	// Negative sleep must not block.
	RealClock{}.Sleep(-time.Hour)
}
