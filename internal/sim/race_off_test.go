//go:build !race

package sim

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool intentionally drops a fraction of Puts to shake out lifetime
// bugs, so allocation-exactness assertions only hold without it.
const raceEnabled = false
