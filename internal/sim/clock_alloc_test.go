package sim

import (
	"testing"
	"time"
)

// TestSleepSingleWorkerAllocFree pins the untracked fast path: a Sleep with
// no registered workers advances the clock with zero allocations.
func TestSleepSingleWorkerAllocFree(t *testing.T) {
	c := NewSimClock()
	if n := testing.AllocsPerRun(100, func() { c.Sleep(time.Millisecond) }); n != 0 {
		t.Fatalf("single-worker Sleep allocates %.1f times per call, want 0", n)
	}
}

// TestSleepWakeCycleAllocBound pins the contended path: with the sleeper
// pool warm, a full sleep/wake round trip between two workers must stay
// (amortized) allocation-free. A small slack absorbs sync.Pool refills after
// incidental GC cycles; the pre-refactor implementation allocated a sleeper
// and a channel (2+ allocations) on every single call.
func TestSleepWakeCycleAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool intentionally drops Puts under -race; exact allocation bounds don't hold")
	}
	c := NewSimClock()
	c.AddWorker(2)
	stop := make(chan struct{})
	partnerDone := make(chan struct{})
	go func() {
		defer close(partnerDone)
		defer c.DoneWorker()
		for {
			select {
			case <-stop:
				return
			default:
				c.Sleep(time.Millisecond)
			}
		}
	}()
	c.Sleep(time.Millisecond) // warm both sleeper-pool entries
	n := testing.AllocsPerRun(200, func() { c.Sleep(time.Millisecond) })
	close(stop)
	// The partner may be blocked in Sleep waiting for us; feed advances
	// until it observes stop and unregisters.
	for {
		select {
		case <-partnerDone:
			c.DoneWorker()
			if n > 0.5 {
				t.Fatalf("sleep/wake cycle allocates %.2f times per call, want ~0", n)
			}
			return
		default:
			c.Sleep(time.Millisecond)
		}
	}
}
