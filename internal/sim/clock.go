// Package sim provides the simulation substrate shared by every device and
// platform component in this repository: a virtual clock, deterministic
// random-number streams, and a fault injector.
//
// The paper's experiments run for up to 8 hours of wall time on a physical
// workcell. Replacing the physical workcell with simulated devices only
// preserves the paper's timing results (Table 1, Figure 4) if every action
// advances a faithful model of time. The Clock interface lets the same
// engine, device, and application code run either against a SimClock (an
// 8-hour experiment replays in milliseconds) or a RealClock (actions sleep
// for their modeled duration).
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source used by all simulated components. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller until d has elapsed on this clock.
	// A non-positive d returns immediately.
	Sleep(d time.Duration)
}

// Epoch is the default start time for simulated clocks. The exact date is
// arbitrary; it is fixed so that event logs and portal records are
// reproducible run-to-run.
var Epoch = time.Date(2023, time.August, 16, 9, 0, 0, 0, time.UTC)

// RealClock is a Clock backed by the wall clock.
type RealClock struct{}

// Now returns time.Now().
func (RealClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// SimClock is a virtual clock. Time advances only when a goroutine sleeps on
// it. When several goroutines sleep concurrently, the clock advances to the
// earliest pending wake-up each time all known sleepers are blocked, which
// makes concurrent simulated work (e.g. two OT-2 modules mixing in parallel)
// overlap in virtual time exactly as it would on real hardware.
//
// The zero value is not usable; construct with NewSimClock.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
	// sleeper is a binary min-heap ordered by deadline, so each advance costs
	// O(log n) instead of the O(n log n) full sort the first implementation
	// paid on every wake-up cycle.
	sleeper []*simSleeper
	// waiters counts goroutines currently registered via AddWorker that the
	// clock should wait for before advancing time. When zero, any Sleep
	// advances the clock immediately (single-threaded simulation).
	workers int
}

type simSleeper struct {
	deadline time.Time
	// ch carries the wake-up signal. It is buffered so the clock can send
	// without blocking, and signaled by send rather than close so the sleeper
	// can return to sleeperPool and be reused for a later Sleep.
	ch chan struct{}
}

// sleeperPool recycles simSleepers (and their channels) across Sleep calls;
// a steady-state simulation sleeps allocation-free.
var sleeperPool = sync.Pool{
	New: func() any { return &simSleeper{ch: make(chan struct{}, 1)} },
}

// push adds s to the deadline min-heap. Caller holds c.mu.
func (c *SimClock) push(s *simSleeper) {
	c.sleeper = append(c.sleeper, s)
	h := c.sleeper
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h[i].deadline.Before(h[parent].deadline) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest-deadline sleeper. Caller holds c.mu.
func (c *SimClock) pop() *simSleeper {
	h := c.sleeper
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil // release the reference so the heap's spare capacity doesn't pin it
	c.sleeper = h[:n]
	h = c.sleeper
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h[right].deadline.Before(h[left].deadline) {
			min = right
		}
		if !h[min].deadline.Before(h[i].deadline) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// NewSimClock returns a SimClock starting at Epoch.
func NewSimClock() *SimClock { return NewSimClockAt(Epoch) }

// NewSimClockAt returns a SimClock starting at the given time.
func NewSimClockAt(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the current virtual time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AddWorker registers n additional goroutines as active simulation workers.
// While more than zero workers are registered, Sleep only advances the clock
// when every registered worker is blocked in Sleep, so that parallel workers
// overlap in virtual time. Call with a negative n (or use DoneWorker) when a
// worker exits.
func (c *SimClock) AddWorker(n int) {
	c.mu.Lock()
	c.workers += n
	if c.workers < 0 {
		c.workers = 0
	}
	c.advanceLocked()
	c.mu.Unlock()
}

// DoneWorker unregisters one simulation worker.
func (c *SimClock) DoneWorker() { c.AddWorker(-1) }

// Sleep advances virtual time. If no workers are registered, the clock jumps
// immediately. With registered workers, the caller blocks until the clock
// reaches its deadline, which happens once all workers are sleeping.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	if c.workers <= 1 {
		// Single-threaded (or untracked) simulation: advance directly.
		c.now = c.now.Add(d)
		c.advanceLocked()
		c.mu.Unlock()
		return
	}
	s := sleeperPool.Get().(*simSleeper)
	s.deadline = c.now.Add(d)
	c.push(s)
	c.advanceLocked()
	c.mu.Unlock()
	<-s.ch
	sleeperPool.Put(s)
}

// advanceLocked wakes sleepers and advances time while all workers are
// blocked. Caller holds c.mu.
func (c *SimClock) advanceLocked() {
	for {
		// Wake every sleeper whose deadline has passed, earliest first.
		for len(c.sleeper) > 0 && !c.sleeper[0].deadline.After(c.now) {
			s := c.pop()
			s.ch <- struct{}{}
		}
		if len(c.sleeper) == 0 {
			return
		}
		// Only advance when every tracked worker is accounted for as asleep.
		if c.workers > 0 && len(c.sleeper) < c.workers {
			return
		}
		c.now = c.sleeper[0].deadline
	}
}

// Advance moves the clock forward by d without blocking, waking any sleepers
// whose deadlines pass. Useful in tests.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v", d))
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.advanceLocked()
	c.mu.Unlock()
}
