package sim

import (
	"sync"
	"testing"
	"time"
)

// BenchmarkSimClockSleepSingle is the untracked-simulation fast path: no
// registered workers, every Sleep advances the clock directly.
func BenchmarkSimClockSleepSingle(b *testing.B) {
	c := NewSimClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Sleep(time.Millisecond)
	}
}

// BenchmarkSimClockWorkers measures the contended path a fleet run exercises:
// many registered workers sleeping concurrently, the clock advancing via the
// sleeper min-heap each time the pool quiesces.
func BenchmarkSimClockWorkers(b *testing.B) {
	for _, workers := range []int{4, 32} {
		b.Run(map[int]string{4: "4", 32: "32"}[workers], func(b *testing.B) {
			c := NewSimClock()
			c.AddWorker(workers)
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					defer c.DoneWorker()
					d := time.Duration(w+1) * time.Millisecond
					for i := 0; i < b.N; i++ {
						c.Sleep(d)
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// BenchmarkSimClockAdvance drives a large sleeper population through Advance,
// the test-harness path that exercises heap pop without the worker gating.
func BenchmarkSimClockAdvance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := NewSimClock()
		c.AddWorker(64 + 1) // gate advances so sleepers pile up
		var wg sync.WaitGroup
		for w := 0; w < 64; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer c.DoneWorker()
				c.Sleep(time.Duration(w+1) * time.Second)
			}(w)
		}
		for {
			c.mu.Lock()
			n := len(c.sleeper)
			c.mu.Unlock()
			if n == 64 {
				break
			}
		}
		b.StartTimer()
		c.Advance(65 * time.Second)
		b.StopTimer()
		c.DoneWorker()
		wg.Wait()
		b.StartTimer()
	}
}
