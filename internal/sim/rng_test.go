package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v for same seed", i, x, y)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDeriveIsDeterministicAndLabelSensitive(t *testing.T) {
	d1 := NewRNG(7).Derive("ot2")
	d2 := NewRNG(7).Derive("ot2")
	d3 := NewRNG(7).Derive("camera")
	x1, x2, x3 := d1.Float64(), d2.Float64(), d3.Float64()
	if x1 != x2 {
		t.Fatalf("same label derive differs: %v vs %v", x1, x2)
	}
	if x1 == x3 {
		t.Fatalf("different labels derive identically: %v", x1)
	}
}

func TestDeriveInsulatesStreams(t *testing.T) {
	// Draws on one derived stream must not perturb a sibling derived earlier.
	root := NewRNG(99)
	a := root.Derive("a")
	b := root.Derive("b")
	want := b.Float64()

	root2 := NewRNG(99)
	a2 := root2.Derive("a")
	for i := 0; i < 10; i++ {
		a2.Float64() // extra draws on a
	}
	b2 := root2.Derive("b")
	if got := b2.Float64(); got != want {
		t.Fatalf("sibling stream perturbed: %v != %v", got, want)
	}
	_ = a
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(100, 0.1)
		if v < 90 || v > 110+1e-9 {
			t.Fatalf("Jitter(100, 0.1) = %v out of [90,110]", v)
		}
	}
	if v := g.Jitter(100, 0); v != 100 {
		t.Fatalf("Jitter with frac=0 = %v, want 100", v)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(5)
	const n = 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("sample mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("sample stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestBoolEdgeCases(t *testing.T) {
	g := NewRNG(6)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if g.Bool(-0.5) {
			t.Fatal("Bool(<0) returned true")
		}
		if !g.Bool(1.5) {
			t.Fatal("Bool(>1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	g := NewRNG(7)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("Bool(0.3) frequency %v, want ~0.3", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(8)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGConcurrentUse(t *testing.T) {
	g := NewRNG(9)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				g.Float64()
				g.Intn(10)
				g.NormFloat64()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
