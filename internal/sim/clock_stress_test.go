package sim

import (
	"sync"
	"testing"
	"time"
)

// TestSimClockConcurrentSleeperStress is the invariant module-lease
// pipelining leans on: dozens of registered workers hammering one virtual
// clock with randomized sleep durations must (a) never deadlock, (b) never
// observe time move backwards, (c) always wake at or after their own
// deadline, and (d) finish with the clock at the longest per-worker total —
// concurrent work overlaps in virtual time. Run under -race in CI.
func TestSimClockConcurrentSleeperStress(t *testing.T) {
	const (
		workers = 32
		rounds  = 40
	)
	c := NewSimClock()
	rng := NewRNG(2023)
	// Pre-draw each worker's sleep schedule so the RNG is not shared across
	// goroutines and the expected end time is known up front.
	schedules := make([][]time.Duration, workers)
	var longest time.Duration
	for w := range schedules {
		r := rng.Derive(string(rune('a' + w)))
		var total time.Duration
		schedules[w] = make([]time.Duration, rounds)
		for i := range schedules[w] {
			// 1ms..10s of virtual time, with occasional zero/negative sleeps
			// that must be no-ops.
			switch i % 10 {
			case 7:
				schedules[w][i] = 0
			case 8:
				schedules[w][i] = -time.Second
			default:
				d := time.Duration(r.Intn(int(10*time.Second))) + time.Millisecond
				schedules[w][i] = d
				total += d
			}
		}
		if total > longest {
			longest = total
		}
	}

	c.AddWorker(workers)
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer c.DoneWorker()
			for _, d := range schedules[w] {
				before := c.Now()
				c.Sleep(d)
				after := c.Now()
				if after.Before(before) {
					errs <- "time moved backwards"
					return
				}
				if d > 0 && after.Before(before.Add(d)) {
					errs <- "woke before deadline"
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run deadlocked")
	}
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	// All workers have exited; the clock must sit exactly at the longest
	// worker's total — overlapped, not serialized (the serialized total
	// would be ~workers times larger).
	if got := c.Now().Sub(Epoch); got != longest {
		t.Fatalf("clock advanced %v, want longest schedule %v", got, longest)
	}
}

// TestSimClockWorkersJoiningAndLeaving churns worker registration while
// sleeps are in flight — the lane-scheduler pattern, where a lane registers
// only while it runs a campaign and deregisters while blocked on the queue
// or on a module lease.
func TestSimClockWorkersJoiningAndLeaving(t *testing.T) {
	const workers = 16
	c := NewSimClock()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c.AddWorker(1)
				c.Sleep(time.Duration(w+1) * 100 * time.Millisecond)
				c.DoneWorker()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("join/leave churn deadlocked")
	}
	// No exact final time is defined under churn (registration windows
	// overlap nondeterministically), but the clock must have advanced at
	// least the longest single worker's serial schedule and must be
	// monotone, which Sleep asserts implicitly by never waking early.
	if min := workers * 20 * 100 * time.Millisecond / time.Duration(workers); c.Now().Sub(Epoch) < min {
		t.Fatalf("clock advanced only %v", c.Now().Sub(Epoch))
	}
}
