package sim

import (
	"errors"
	"math"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if err := in.Check("ot2", "run_protocol"); err != nil {
			t.Fatalf("nil injector produced %v", err)
		}
	}
	if in.Total() != 0 {
		t.Fatal("nil injector Total != 0")
	}
	if in.Injected() != nil {
		t.Fatal("nil injector Injected != nil")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(FaultPlan{}, NewRNG(1))
	for i := 0; i < 1000; i++ {
		if err := in.Check("pf400", "transfer"); err != nil {
			t.Fatalf("zero plan produced %v", err)
		}
	}
}

func TestInjectionRates(t *testing.T) {
	in := NewInjector(FaultPlan{PReceive: 0.1, PProcess: 0.05, PReport: 0.02}, NewRNG(2))
	const n = 20000
	for i := 0; i < n; i++ {
		in.Check("m", "a")
	}
	counts := in.Injected()
	// Receive fires first, so its empirical rate should be ~0.1.
	if frac := float64(counts[FaultReceive]) / n; math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("receive rate %v, want ~0.1", frac)
	}
	if counts[FaultProcess] == 0 || counts[FaultReport] == 0 {
		t.Fatalf("process/report faults never fired: %v", counts)
	}
	if in.Total() != counts[FaultReceive]+counts[FaultProcess]+counts[FaultReport] {
		t.Fatalf("Total %d inconsistent with per-kind counts %v", in.Total(), counts)
	}
}

func TestFaultErrorWrapsSentinel(t *testing.T) {
	in := NewInjector(FaultPlan{PReceive: 1}, NewRNG(3))
	err := in.Check("camera", "take_picture")
	if err == nil {
		t.Fatal("PReceive=1 did not inject")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	if err.Kind != FaultReceive || err.Module != "camera" || err.Action != "take_picture" {
		t.Fatalf("fault fields wrong: %+v", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultReceive:  "receive",
		FaultProcess:  "process",
		FaultReport:   "report",
		FaultKind(42): "FaultKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	mk := func() []FaultKind {
		in := NewInjector(FaultPlan{PReceive: 0.2, PProcess: 0.2}, NewRNG(7))
		var seq []FaultKind
		for i := 0; i < 200; i++ {
			if err := in.Check("m", "a"); err != nil {
				seq = append(seq, err.Kind)
			}
		}
		return seq
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic injection count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic fault sequence at %d", i)
		}
	}
}
