package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel wrapped by all injected failures, so tests and
// retry logic can distinguish injected faults from programming errors.
var ErrInjected = errors.New("injected fault")

// FaultKind classifies where in the command path an injected failure occurs.
// The paper observes that "most failures occur during reception and
// processing of commands", which motivates its CCWH metric; the injector
// reproduces those failure classes so resiliency experiments are meaningful.
type FaultKind int

const (
	// FaultReceive simulates a command that never reaches the instrument
	// (dropped or garbled request). The action does not run.
	FaultReceive FaultKind = iota
	// FaultProcess simulates an instrument that accepts a command but fails
	// while processing it (firmware error, motion fault). The action runs
	// partially and reports failure.
	FaultProcess
	// FaultReport simulates a completed action whose success report is lost;
	// the control system sees a failure even though the work happened.
	FaultReport
)

// String returns the fault class name.
func (k FaultKind) String() string {
	switch k {
	case FaultReceive:
		return "receive"
	case FaultProcess:
		return "process"
	case FaultReport:
		return "report"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultError is the error returned for an injected fault.
type FaultError struct {
	Kind   FaultKind
	Module string
	Action string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("%s fault on %s.%s: %v", e.Kind, e.Module, e.Action, ErrInjected)
}

// Unwrap lets errors.Is(err, ErrInjected) succeed.
func (e *FaultError) Unwrap() error { return ErrInjected }

// FaultPlan configures an injector. Probabilities are per command attempt.
type FaultPlan struct {
	PReceive float64 // probability a command is lost before reception
	PProcess float64 // probability an accepted command fails mid-action
	PReport  float64 // probability a completed command's report is lost
}

// Injector decides, per command attempt, whether to inject a failure.
// A nil *Injector injects nothing, so components can hold one unconditionally.
type Injector struct {
	mu    sync.Mutex
	plan  FaultPlan
	rng   *RNG
	count map[FaultKind]int
}

// NewInjector returns an injector drawing from rng. rng must not be nil
// unless the plan is all-zero.
func NewInjector(plan FaultPlan, rng *RNG) *Injector {
	return &Injector{plan: plan, rng: rng, count: make(map[FaultKind]int)}
}

// Check returns a non-nil *FaultError if a fault should be injected for this
// command attempt, else nil. Safe on a nil receiver.
func (in *Injector) Check(module, action string) *FaultError {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng == nil {
		return nil
	}
	switch {
	case in.rng.Bool(in.plan.PReceive):
		in.count[FaultReceive]++
		return &FaultError{Kind: FaultReceive, Module: module, Action: action}
	case in.rng.Bool(in.plan.PProcess):
		in.count[FaultProcess]++
		return &FaultError{Kind: FaultProcess, Module: module, Action: action}
	case in.rng.Bool(in.plan.PReport):
		in.count[FaultReport]++
		return &FaultError{Kind: FaultReport, Module: module, Action: action}
	}
	return nil
}

// Injected reports how many faults of each kind have been injected.
func (in *Injector) Injected() map[FaultKind]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[FaultKind]int, len(in.count))
	for k, v := range in.count {
		out[k] = v
	}
	return out
}

// Total reports the total number of injected faults.
func (in *Injector) Total() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, v := range in.count {
		n += v
	}
	return n
}
