package sim

import (
	"math/rand"
	"sync"
)

// RNG is a deterministic, concurrency-safe random stream. Every stochastic
// component in the repository (solvers, sensor noise, fault injection,
// device jitter) draws from an RNG derived from the experiment seed, so that
// a whole experiment is reproducible bit-for-bit from a single integer.
type RNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent stream deterministically derived from this
// one and a label. Component i of a system should derive its stream once at
// construction; the order of later draws in other components then cannot
// perturb it.
func (g *RNG) Derive(label string) *RNG {
	g.mu.Lock()
	defer g.mu.Unlock()
	seed := g.r.Int63()
	for _, b := range []byte(label) {
		seed = seed*1099511628211 + int64(b) // FNV-style fold of the label
	}
	return NewRNG(seed)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Float64()
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Int63()
}

// NormFloat64 returns a standard normal deviate.
func (g *RNG) NormFloat64() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.NormFloat64()
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.NormFloat64()
}

// NormFloat64Fill fills dst with standard normal deviates, taking the stream
// lock once for the whole batch instead of once per draw. The values are
// exactly the ones len(dst) consecutive NormFloat64 calls would return, so
// batching a hot loop's draws does not perturb the stream.
func (g *RNG) NormFloat64Fill(dst []float64) {
	g.mu.Lock()
	for i := range dst {
		dst[i] = g.r.NormFloat64()
	}
	g.mu.Unlock()
}

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.Float64()
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
// It is used to perturb modeled action durations.
func (g *RNG) Jitter(base float64, frac float64) float64 {
	if frac <= 0 {
		return base
	}
	return base * g.Uniform(1-frac, 1+frac)
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.r.Perm(n)
}

// Shuffle permutes n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.r.Shuffle(n, swap)
}

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.Float64() < p
}
