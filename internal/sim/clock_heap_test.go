package sim

import (
	"fmt"
	"sort"
	"testing"
	"time"
)

// TestHeapMatchesSortedReference drives the sleeper min-heap through
// randomized push/pop interleavings and checks every pop against a
// sorted-slice reference — the data structure advanceLocked used before the
// heap refactor. Any heap-property violation (wrong sift direction, stale
// tail element after pop) surfaces as an out-of-order wake deadline.
func TestHeapMatchesSortedReference(t *testing.T) {
	rng := NewRNG(41)
	for iter := 0; iter < 50; iter++ {
		c := NewSimClock()
		var ref []time.Time
		popRef := func() time.Time {
			sort.Slice(ref, func(i, j int) bool { return ref[i].Before(ref[j]) })
			d := ref[0]
			ref = ref[1:]
			return d
		}
		ops := 3 + rng.Intn(200)
		for op := 0; op < ops; op++ {
			if len(ref) == 0 || rng.Float64() < 0.6 {
				// Duplicate deadlines are common in real schedules (many
				// modules share an act delay), so draw from a small range.
				d := Epoch.Add(time.Duration(rng.Intn(32)) * time.Second)
				c.push(&simSleeper{deadline: d})
				ref = append(ref, d)
				continue
			}
			want := popRef()
			got := c.pop().deadline
			if !got.Equal(want) {
				t.Fatalf("iter %d op %d: heap popped %v, sorted reference gives %v", iter, op, got, want)
			}
		}
		for len(ref) > 0 {
			want := popRef()
			got := c.pop().deadline
			if !got.Equal(want) {
				t.Fatalf("iter %d drain: heap popped %v, sorted reference gives %v", iter, got, want)
			}
		}
		if len(c.sleeper) != 0 {
			t.Fatalf("iter %d: %d sleepers left after drain", iter, len(c.sleeper))
		}
	}
}

// TestConcurrentWakeupsMatchReferenceSchedule runs randomized multi-worker
// schedules end to end and checks each wake-up against the analytically
// computed reference: worker w's i-th sleep must return with the clock
// exactly at the cumulative sum of its first i durations. The all-workers-
// asleep advance rule guarantees the clock cannot move past a woken worker
// until that worker sleeps again, so the equality is exact, not a lower
// bound. Run under -race in CI like the rest of the clock suite.
func TestConcurrentWakeupsMatchReferenceSchedule(t *testing.T) {
	rng := NewRNG(42)
	for iter := 0; iter < 8; iter++ {
		workers := 2 + rng.Intn(6)
		rounds := 1 + rng.Intn(20)
		schedules := make([][]time.Duration, workers)
		var longest time.Duration
		for w := range schedules {
			schedules[w] = make([]time.Duration, rounds)
			var total time.Duration
			for i := range schedules[w] {
				schedules[w][i] = time.Duration(1+rng.Intn(5000)) * time.Millisecond
				total += schedules[w][i]
			}
			if total > longest {
				longest = total
			}
		}
		c := NewSimClock()
		c.AddWorker(workers)
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func(sched []time.Duration) {
				defer c.DoneWorker()
				elapsed := time.Duration(0)
				for _, d := range sched {
					c.Sleep(d)
					elapsed += d
					if got := c.Now().Sub(Epoch); got != elapsed {
						errs <- fmt.Errorf("woke at +%v, reference schedule says +%v", got, elapsed)
						return
					}
				}
				errs <- nil
			}(schedules[w])
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
		if got := c.Now().Sub(Epoch); got != longest {
			t.Fatalf("iter %d: clock ended at +%v, want longest timeline +%v", iter, got, longest)
		}
	}
}
