//go:build race

package sim

// raceEnabled: see race_off_test.go.
const raceEnabled = true
