package device_test

// Integration tests exercising the five instrument simulators together
// against one shared world, via the wei.Module interface only — the same
// surface the engine uses.

import (
	"context"
	"strings"
	"testing"
	"time"

	"colormatch/internal/color"
	"colormatch/internal/device"
	"colormatch/internal/device/barty"
	"colormatch/internal/device/camera"
	"colormatch/internal/device/ot2"
	"colormatch/internal/device/pf400"
	"colormatch/internal/device/sciclops"
	"colormatch/internal/labware"
	"colormatch/internal/sim"
	"colormatch/internal/vision"
	"colormatch/internal/wei"
)

type cell struct {
	clock *sim.SimClock
	world *device.World
	sci   *sciclops.Module
	arm   *pf400.Module
	ot    *ot2.Module
	bar   *barty.Module
	cam   *camera.Module
}

func newCell(t *testing.T, seed int64, stock int) *cell {
	t.Helper()
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, stock)
	rng := sim.NewRNG(seed)
	return &cell{
		clock: clock,
		world: world,
		sci:   sciclops.New("sciclops", world, rng.Derive("sciclops")),
		arm:   pf400.New("pf400", world, rng.Derive("pf400")),
		ot:    ot2.New("ot2", world, rng.Derive("ot2")),
		bar:   barty.New("barty", world, rng.Derive("barty")),
		cam:   camera.New("camera", world, rng.Derive("camera")),
	}
}

func act(t *testing.T, m wei.Module, action string, args wei.Args) wei.Result {
	t.Helper()
	res, err := m.Act(context.Background(), action, args)
	if err != nil {
		t.Fatalf("%s.%s: %v", m.Name(), action, err)
	}
	return res
}

func TestSciclopsGetPlateAndStock(t *testing.T) {
	c := newCell(t, 1, 2)
	res := act(t, c.sci, "get_plate", nil)
	if res["plate_id"] != "plate-001" {
		t.Fatalf("res = %#v", res)
	}
	st := act(t, c.sci, "status", nil)
	if st["plates_remaining"] != 1.0 {
		t.Fatalf("status = %#v", st)
	}
	if c.clock.Now().Sub(sim.Epoch) < 25*time.Second {
		t.Fatal("get_plate took no time")
	}
	// Staging onto an occupied exchange fails.
	if _, err := c.sci.Act(context.Background(), "get_plate", nil); err == nil {
		t.Fatal("double get_plate succeeded")
	}
}

func TestPF400TransferMovesPlate(t *testing.T) {
	c := newCell(t, 2, 1)
	act(t, c.sci, "get_plate", nil)
	act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocCamera})
	if _, err := c.world.PlateAt(device.LocCamera); err != nil {
		t.Fatal(err)
	}
	// Transfer without a plate fails.
	if _, err := c.arm.Act(context.Background(), "transfer",
		wei.Args{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck}); err == nil {
		t.Fatal("empty transfer succeeded")
	}
	// Missing args fail.
	if _, err := c.arm.Act(context.Background(), "transfer", wei.Args{"source": device.LocCamera}); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestTransferDurationModel(t *testing.T) {
	short := pf400.TransferDuration(device.LocSciclopsExchange, device.LocCamera)
	long := pf400.TransferDuration(device.LocSciclopsExchange, device.LocTrash)
	if long <= short {
		t.Fatalf("rail distance ignored: %v vs %v", short, long)
	}
	camOt2 := pf400.TransferDuration(device.LocCamera, device.LocOT2Deck)
	if camOt2 != 42*time.Second {
		t.Fatalf("camera->ot2 = %v, calibration expects 42s", camOt2)
	}
}

func TestOT2RunProtocolDispensesAndDraws(t *testing.T) {
	c := newCell(t, 3, 1)
	act(t, c.sci, "get_plate", nil)
	act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck})
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})

	orders := []ot2.WellOrder{
		{Well: labware.WellAddress{Row: 0, Col: 0}, Volumes: []float64{100, 50, 75, 50}},
		{Well: labware.WellAddress{Row: 0, Col: 1}, Volumes: []float64{0, 100, 100, 75}},
	}
	res := act(t, c.ot, "run_protocol", wei.Args{"protocol": "mix_colors", "wells": ot2.EncodeWells(orders)})
	mixed, _ := res["wells_mixed"].([]any)
	if len(mixed) != 2 || mixed[0] != "A1" || mixed[1] != "A2" {
		t.Fatalf("wells_mixed = %#v", mixed)
	}

	plate, err := c.world.PlateAt(device.LocOT2Deck)
	if err != nil {
		t.Fatal(err)
	}
	got := plate.Contents(labware.WellAddress{Row: 0, Col: 0})
	want := []float64{100, 50, 75, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A1 contents = %v", got)
		}
	}
	rs, _ := c.world.Reservoirs("ot2")
	if v := rs[0].Volume(); v != device.ReservoirCapacityUL-100 {
		t.Fatalf("cyan reservoir = %v", v)
	}
	if v := rs[1].Volume(); v != device.ReservoirCapacityUL-150 {
		t.Fatalf("magenta reservoir = %v", v)
	}
}

func TestOT2FailsWithoutPlateOrLiquid(t *testing.T) {
	c := newCell(t, 4, 1)
	orders := ot2.EncodeWells([]ot2.WellOrder{{Well: labware.WellAddress{}, Volumes: []float64{10, 10, 10, 10}}})
	if _, err := c.ot.Act(context.Background(), "run_protocol",
		wei.Args{"wells": orders}); err == nil || !strings.Contains(err.Error(), "no plate") {
		t.Fatalf("no-plate err = %v", err)
	}
	// Plate present but reservoirs empty.
	act(t, c.sci, "get_plate", nil)
	act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck})
	if _, err := c.ot.Act(context.Background(), "run_protocol",
		wei.Args{"wells": orders}); err == nil || !strings.Contains(err.Error(), "insufficient") {
		t.Fatalf("empty-reservoir err = %v", err)
	}
}

func TestOT2TimingScalesWithBatch(t *testing.T) {
	mk := func(n int) time.Duration {
		c := newCell(t, 5, 1)
		act(t, c.sci, "get_plate", nil)
		act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck})
		act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
		start := c.clock.Now()
		var orders []ot2.WellOrder
		for i := 0; i < n; i++ {
			orders = append(orders, ot2.WellOrder{Well: labware.WellAt(i), Volumes: []float64{50, 50, 50, 125}})
		}
		act(t, c.ot, "run_protocol", wei.Args{"wells": ot2.EncodeWells(orders)})
		return c.clock.Now().Sub(start)
	}
	d1, d8 := mk(1), mk(8)
	// Per-well marginal cost must dominate: d8 ≈ setup + 8·well.
	if d8 < 6*d1/2 {
		t.Fatalf("batch timing off: d1=%v d8=%v", d1, d8)
	}
	// Calibration: one well ≈ 145s ± jitter.
	if d1 < 135*time.Second || d1 > 155*time.Second {
		t.Fatalf("B=1 protocol duration %v, want ~145s", d1)
	}
}

func TestBartyFillDrainRefill(t *testing.T) {
	c := newCell(t, 6, 1)
	rs, _ := c.world.Reservoirs("ot2")
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
	for _, r := range rs {
		if r.Volume() != device.ReservoirCapacityUL {
			t.Fatalf("%s not full after fill: %v", r.Name, r.Volume())
		}
	}
	act(t, c.bar, "drain_colors", wei.Args{"module": "ot2"})
	for _, r := range rs {
		if r.Volume() != 0 {
			t.Fatalf("%s not empty after drain: %v", r.Name, r.Volume())
		}
	}
	rs[0].Fill(500)
	act(t, c.bar, "refill_colors", wei.Args{"module": "ot2"})
	for _, r := range rs {
		if r.Volume() != device.ReservoirCapacityUL {
			t.Fatalf("%s not full after refill: %v", r.Name, r.Volume())
		}
	}
	if _, err := c.bar.Act(context.Background(), "fill_colors", wei.Args{"module": "ghost"}); err == nil {
		t.Fatal("unknown module accepted")
	}
	if _, err := c.bar.Act(context.Background(), "fill_colors", nil); err == nil {
		t.Fatal("missing module arg accepted")
	}
}

func TestBartyFillDurationScalesWithDeficit(t *testing.T) {
	c := newCell(t, 7, 1)
	start := c.clock.Now()
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
	fullFill := c.clock.Now().Sub(start)
	// 25000µL at 250µL/s = 100s + setup.
	if fullFill < 90*time.Second || fullFill > 130*time.Second {
		t.Fatalf("full fill took %v", fullFill)
	}
	start = c.clock.Now()
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
	topOff := c.clock.Now().Sub(start)
	if topOff >= fullFill/2 {
		t.Fatalf("top-off fill took %v (full %v)", topOff, fullFill)
	}
}

func TestCameraCapturesAnalyzableFrame(t *testing.T) {
	c := newCell(t, 8, 1)
	act(t, c.sci, "get_plate", nil)
	act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck})
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
	var orders []ot2.WellOrder
	for i := 0; i < 12; i++ {
		orders = append(orders, ot2.WellOrder{Well: labware.WellAt(i), Volumes: []float64{80, 40, 40, 115}})
	}
	act(t, c.ot, "run_protocol", wei.Args{"wells": ot2.EncodeWells(orders)})
	act(t, c.arm, "transfer", wei.Args{"source": device.LocOT2Deck, "target": device.LocCamera})

	res := act(t, c.cam, "take_picture", nil)
	frame, err := camera.DecodeFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	img, err := vision.DecodePNG(frame)
	if err != nil {
		t.Fatal(err)
	}
	analyzer := vision.NewAnalyzer()
	analysis, err := analyzer.Analyze(img)
	if err != nil {
		t.Fatal(err)
	}
	// The analyzed color of well A1 must match the physics prediction.
	lin, err := c.world.Model.MixVolumes([]float64{80, 40, 40, 115})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against an ideal-sensor render of the same liquid: allow for
	// sensor gain, vignette and noise.
	approx := analysis.WellColors[0]
	ideal := lin.SRGB8()
	if d := color.EuclideanRGB(approx, ideal); d > 20 {
		t.Fatalf("analyzed A1 %+v vs physics %+v (d=%.1f)", approx, ideal, d)
	}
}

func TestCameraRequiresPlate(t *testing.T) {
	c := newCell(t, 9, 1)
	if _, err := c.cam.Act(context.Background(), "take_picture", nil); err == nil {
		t.Fatal("pictured an empty mount")
	}
}

func TestParseWellsFormats(t *testing.T) {
	// HTTP-JSON shape: []any of map[string]any with float64 volumes.
	jsonShape := []any{
		map[string]any{"well": "B3", "volumes": []any{1.0, 2.0, 3.0, 4.0}},
	}
	orders, err := ot2.ParseWells(jsonShape, 4)
	if err != nil {
		t.Fatal(err)
	}
	if orders[0].Well.String() != "B3" || orders[0].Volumes[3] != 4 {
		t.Fatalf("orders = %+v", orders)
	}
	// Error shapes.
	bad := []any{
		"nope",
		[]any{"x"},
		[]any{map[string]any{"volumes": []any{1.0, 2.0, 3.0, 4.0}}},
		[]any{map[string]any{"well": "Z9", "volumes": []any{1.0, 2.0, 3.0, 4.0}}},
		[]any{map[string]any{"well": "A1"}},
		[]any{map[string]any{"well": "A1", "volumes": []any{1.0}}},
		[]any{map[string]any{"well": "A1", "volumes": []any{1.0, 2.0, 3.0, "x"}}},
		[]any{map[string]any{"well": "A1", "volumes": []any{1.0, 2.0, 3.0, -4.0}}},
	}
	for i, b := range bad {
		if _, err := ot2.ParseWells(b, 4); err == nil {
			t.Errorf("bad shape %d accepted", i)
		}
	}
}

func TestFullMixCycleTiming(t *testing.T) {
	// One full B=1 iteration (transfer, mix 1 well, transfer, photo) must
	// land near the paper's 231s/iteration calibration.
	c := newCell(t, 10, 1)
	act(t, c.sci, "get_plate", nil)
	act(t, c.arm, "transfer", wei.Args{"source": device.LocSciclopsExchange, "target": device.LocCamera})
	act(t, c.bar, "fill_colors", wei.Args{"module": "ot2"})
	start := c.clock.Now()
	act(t, c.arm, "transfer", wei.Args{"source": device.LocCamera, "target": device.LocOT2Deck})
	act(t, c.ot, "run_protocol", wei.Args{"wells": ot2.EncodeWells([]ot2.WellOrder{
		{Well: labware.WellAt(0), Volumes: []float64{50, 50, 50, 125}},
	})})
	act(t, c.arm, "transfer", wei.Args{"source": device.LocOT2Deck, "target": device.LocCamera})
	act(t, c.cam, "take_picture", nil)
	iter := c.clock.Now().Sub(start)
	if iter < 215*time.Second || iter > 250*time.Second {
		t.Fatalf("B=1 iteration took %v, want ~231s", iter)
	}
}
