// Package ot2 simulates the Opentrons OT-2 automated pipetting robot: "an
// automatic pipetting device that contains four separate color reservoirs
// and a set of pipette tips. Once the pf400 has delivered a plate to the
// ot2 deck, it mixes liquids in the proportions set by the optimization
// algorithm to generate new sample colors."
//
// The protocol interpreter draws real volumes from the module's reservoirs
// and dispenses them into the plate on the deck, so reservoir depletion and
// plate fill level emerge from the same liquid accounting the physical
// system has. The timing model is calibrated so a one-well protocol takes
// ~145s, reproducing the paper's 5h10m synthesis time over 128 samples.
package ot2

import (
	"context"
	"fmt"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/labware"
	"colormatch/internal/sim"
	"colormatch/internal/wei"
)

// Timing model components.
const (
	// SetupDuration covers homing, labware calibration checks and protocol
	// upload, paid once per run_protocol command.
	SetupDuration = 25 * time.Second
	// TipChangeDuration is a tip pickup + drop per well.
	TipChangeDuration = 12 * time.Second
	// DispensePerDye is an aspirate+dispense cycle for one dye into one well.
	DispensePerDye = 24 * time.Second
	// MixDuration is the final pipette-mix of a well.
	MixDuration = 12 * time.Second
)

// WellDuration is the modeled per-well protocol time.
func WellDuration(numDyes int) time.Duration {
	return TipChangeDuration + time.Duration(numDyes)*DispensePerDye + MixDuration
}

// WellOrder is one well's dispense instruction within a protocol.
type WellOrder struct {
	Well    labware.WellAddress
	Volumes []float64 // per dye, microliters
}

// Module is the OT-2 WEI module.
type Module struct {
	*wei.Base
	world      *device.World
	timing     *device.Timing
	reservoirs []*labware.Reservoir
	deck       string
}

// New returns an OT-2 module bound to the world, registering its reservoir
// set. Its deck location is derived from the module name, so a second OT-2
// ("ot2_b") gets its own deck.
func New(name string, world *device.World, rng *sim.RNG) *Module {
	m := &Module{
		Base:       wei.NewBase(name, "liquid_handler", "Opentrons OT-2 pipetting robot (simulated)"),
		world:      world,
		timing:     &device.Timing{Clock: world.Clock, RNG: rng, Jitter: 0.04},
		reservoirs: world.RegisterReservoirs(name),
		deck:       device.DeckLocation(name),
	}
	m.Register(wei.ActionInfo{
		Name:        "run_protocol",
		Description: "dispense and mix the specified dye volumes into plate wells",
		Args:        []string{"protocol", "wells"},
	}, m.runProtocol)
	m.Register(wei.ActionInfo{
		Name:        "status",
		Description: "report reservoir volumes and deck occupancy",
	}, m.status)
	return m
}

// Deck returns the module's deck location.
func (m *Module) Deck() string { return m.deck }

// ParseWells decodes the JSON-shaped "wells" argument into WellOrders.
// It accepts the forms produced both in-process ([]WellOrder passthrough)
// and over HTTP ([]any of map[string]any).
func ParseWells(v any, numDyes int) ([]WellOrder, error) {
	if orders, ok := v.([]WellOrder); ok {
		return orders, nil
	}
	list, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("ot2: wells argument must be a list, got %T", v)
	}
	out := make([]WellOrder, 0, len(list))
	for i, item := range list {
		m, ok := item.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("ot2: wells[%d] must be an object, got %T", i, item)
		}
		wellStr, ok := m["well"].(string)
		if !ok {
			return nil, fmt.Errorf("ot2: wells[%d] missing well address", i)
		}
		addr, err := labware.ParseWell(wellStr)
		if err != nil {
			return nil, fmt.Errorf("ot2: wells[%d]: %w", i, err)
		}
		volsAny, ok := m["volumes"].([]any)
		if !ok {
			return nil, fmt.Errorf("ot2: wells[%d] missing volumes list", i)
		}
		if len(volsAny) != numDyes {
			return nil, fmt.Errorf("ot2: wells[%d] has %d volumes for %d dyes", i, len(volsAny), numDyes)
		}
		vols := make([]float64, len(volsAny))
		for j, vv := range volsAny {
			switch n := vv.(type) {
			case float64:
				vols[j] = n
			case int64:
				vols[j] = float64(n)
			case int:
				vols[j] = float64(n)
			default:
				return nil, fmt.Errorf("ot2: wells[%d].volumes[%d] not numeric: %T", i, j, vv)
			}
			if vols[j] < 0 {
				return nil, fmt.Errorf("ot2: wells[%d].volumes[%d] negative", i, j)
			}
		}
		out = append(out, WellOrder{Well: addr, Volumes: vols})
	}
	return out, nil
}

// EncodeWells converts WellOrders to the JSON-friendly argument form.
func EncodeWells(orders []WellOrder) []any {
	out := make([]any, len(orders))
	for i, o := range orders {
		vols := make([]any, len(o.Volumes))
		for j, v := range o.Volumes {
			vols[j] = v
		}
		out[i] = map[string]any{"well": o.Well.String(), "volumes": vols}
	}
	return out
}

func (m *Module) runProtocol(ctx context.Context, args wei.Args) (wei.Result, error) {
	orders, err := ParseWells(args["wells"], m.world.Model.NumDyes())
	if err != nil {
		return nil, err
	}
	if len(orders) == 0 {
		return nil, fmt.Errorf("ot2: protocol has no wells")
	}
	plate, err := m.world.PlateAt(m.deck)
	if err != nil {
		return nil, fmt.Errorf("ot2: no plate on deck: %w", err)
	}

	m.timing.Work(SetupDuration)
	numDyes := m.world.Model.NumDyes()
	done := make([]string, 0, len(orders))
	for _, o := range orders {
		// Draw from reservoirs first: an empty reservoir aborts before the
		// well is touched, as the physical pipette would aspirate air.
		for i, v := range o.Volumes {
			if v == 0 {
				continue
			}
			if err := m.reservoirs[i].Draw(v); err != nil {
				return nil, fmt.Errorf("ot2: well %s: %w", o.Well, err)
			}
		}
		if err := plate.Dispense(o.Well, o.Volumes); err != nil {
			return nil, fmt.Errorf("ot2: well %s: %w", o.Well, err)
		}
		m.timing.Work(WellDuration(numDyes))
		done = append(done, o.Well.String())
	}
	wells := make([]any, len(done))
	for i, wname := range done {
		wells[i] = wname
	}
	return wei.Result{
		"protocol":    args["protocol"],
		"wells_mixed": wells,
		"plate_used":  float64(plate.Used()),
	}, nil
}

func (m *Module) status(ctx context.Context, args wei.Args) (wei.Result, error) {
	vols := make([]any, len(m.reservoirs))
	names := make([]any, len(m.reservoirs))
	for i, r := range m.reservoirs {
		vols[i] = r.Volume()
		names[i] = r.Name
	}
	res := wei.Result{"reservoir_volumes": vols, "reservoir_names": names}
	if p, err := m.world.PlateAt(m.deck); err == nil {
		res["plate_id"] = p.ID
		res["plate_used"] = float64(p.Used())
	}
	return res, nil
}
