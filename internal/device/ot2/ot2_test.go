package ot2

import (
	"context"
	"strings"
	"testing"

	"colormatch/internal/device"
	"colormatch/internal/labware"
	"colormatch/internal/sim"
)

func setup(t *testing.T) (*Module, *device.World, *sim.SimClock) {
	t.Helper()
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 2)
	m := New("ot2", world, nil)
	rs, err := world.Reservoirs("ot2")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		r.Fill(r.Capacity)
	}
	return m, world, clock
}

func plateOnDeck(t *testing.T, world *device.World) *labware.Plate {
	t.Helper()
	p, err := world.TakeNewPlate(device.LocOT2Deck)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProtocolConservesLiquid(t *testing.T) {
	m, world, _ := setup(t)
	plate := plateOnDeck(t, world)
	vols := []float64{60, 70, 80, 65}
	_, err := m.Act(context.Background(), "run_protocol", map[string]any{
		"wells": EncodeWells([]WellOrder{{Well: labware.WellAt(0), Volumes: vols}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := world.Reservoirs("ot2")
	totalDrawn := 0.0
	for i, r := range rs {
		drawn := device.ReservoirCapacityUL - r.Volume()
		if drawn != vols[i] {
			t.Fatalf("reservoir %d drawn %v, want %v", i, drawn, vols[i])
		}
		totalDrawn += drawn
	}
	got := plate.Contents(labware.WellAt(0))
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum != totalDrawn {
		t.Fatalf("well holds %v, reservoirs lost %v", sum, totalDrawn)
	}
}

func TestRunProtocolDuration(t *testing.T) {
	m, world, clock := setup(t)
	plateOnDeck(t, world)
	var orders []WellOrder
	for i := 0; i < 3; i++ {
		orders = append(orders, WellOrder{Well: labware.WellAt(i), Volumes: []float64{50, 50, 50, 50}})
	}
	start := clock.Now()
	if _, err := m.Act(context.Background(), "run_protocol",
		map[string]any{"wells": EncodeWells(orders)}); err != nil {
		t.Fatal(err)
	}
	want := SetupDuration + 3*WellDuration(4)
	if got := clock.Now().Sub(start); got != want {
		t.Fatalf("duration %v, want %v", got, want)
	}
}

func TestRunProtocolEmptyWellsRejected(t *testing.T) {
	m, world, _ := setup(t)
	plateOnDeck(t, world)
	if _, err := m.Act(context.Background(), "run_protocol",
		map[string]any{"wells": []any{}}); err == nil || !strings.Contains(err.Error(), "no wells") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunProtocolRequiresPlate(t *testing.T) {
	m, _, _ := setup(t)
	orders := EncodeWells([]WellOrder{{Well: labware.WellAt(0), Volumes: []float64{1, 1, 1, 1}}})
	if _, err := m.Act(context.Background(), "run_protocol",
		map[string]any{"wells": orders}); err == nil || !strings.Contains(err.Error(), "no plate") {
		t.Fatalf("err = %v", err)
	}
}

func TestStatusReportsReservoirsAndPlate(t *testing.T) {
	m, world, _ := setup(t)
	res, err := m.Act(context.Background(), "status", nil)
	if err != nil {
		t.Fatal(err)
	}
	vols := res["reservoir_volumes"].([]any)
	if len(vols) != 4 || vols[0] != device.ReservoirCapacityUL {
		t.Fatalf("volumes = %v", vols)
	}
	if _, ok := res["plate_id"]; ok {
		t.Fatal("plate reported with empty deck")
	}
	plateOnDeck(t, world)
	res, _ = m.Act(context.Background(), "status", nil)
	if res["plate_id"] == nil {
		t.Fatal("plate not reported")
	}
}

func TestEncodeParseWellsRoundTrip(t *testing.T) {
	orders := []WellOrder{
		{Well: labware.WellAt(5), Volumes: []float64{1, 2, 3, 4}},
		{Well: labware.WellAt(95), Volumes: []float64{0, 0, 275, 0}},
	}
	back, err := ParseWells(EncodeWells(orders), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("len = %d", len(back))
	}
	for i := range orders {
		if back[i].Well != orders[i].Well {
			t.Fatalf("well %d: %v vs %v", i, back[i].Well, orders[i].Well)
		}
		for j := range orders[i].Volumes {
			if back[i].Volumes[j] != orders[i].Volumes[j] {
				t.Fatalf("volumes %d differ", i)
			}
		}
	}
}

func TestParseWellsPassthrough(t *testing.T) {
	orders := []WellOrder{{Well: labware.WellAt(0), Volumes: []float64{1, 2, 3, 4}}}
	back, err := ParseWells(orders, 4)
	if err != nil || len(back) != 1 {
		t.Fatalf("passthrough failed: %v, %v", back, err)
	}
}

func TestDeckNameDerivation(t *testing.T) {
	world := device.NewWorld(sim.NewSimClock(), 1)
	b := New("ot2_b", world, nil)
	if b.Deck() != "ot2_b.deck" {
		t.Fatalf("deck = %q", b.Deck())
	}
	// Each OT-2 gets its own reservoir set.
	if _, err := world.Reservoirs("ot2_b"); err != nil {
		t.Fatal(err)
	}
}
