// Package pf400 simulates the workcell's manipulator: "a robotic arm used
// to transfer microplates between different plate stations. Operating on a
// rail mechanism, this robot acts as the central transportation unit within
// the workcell."
//
// Transfer durations are the workcell's dominant non-synthesis cost (the
// paper's Table 1 "transfer time" is 3h02m of an 8h12m run), so the timing
// model here is calibrated: a pick, rail travel between stations, and a
// place.
package pf400

import (
	"context"
	"fmt"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
	"colormatch/internal/wei"
)

// Timing model components. A full camera↔ot2 transfer is pick + travel +
// place ≈ 42s, giving the paper's ~84s of arm time per B=1 iteration.
const (
	PickDuration  = 12 * time.Second
	PlaceDuration = 12 * time.Second
	// TravelPerStation is rail travel time between adjacent stations.
	TravelPerStation = 9 * time.Second
)

// railOrder fixes the station layout along the rail, used to model travel
// distance. Unknown locations count as one station away.
var railOrder = map[string]int{
	device.LocSciclopsExchange: 0,
	device.LocCamera:           1,
	device.LocOT2Deck:          3,
	device.LocTrash:            4,
}

// Module is the pf400 WEI module.
type Module struct {
	*wei.Base
	world  *device.World
	timing *device.Timing
}

// New returns a pf400 module bound to the world.
func New(name string, world *device.World, rng *sim.RNG) *Module {
	m := &Module{
		Base:   wei.NewBase(name, "manipulator", "PF400 rail-mounted plate manipulator (simulated)"),
		world:  world,
		timing: &device.Timing{Clock: world.Clock, RNG: rng, Jitter: 0.05},
	}
	m.Register(wei.ActionInfo{
		Name:        "transfer",
		Description: "move the microplate from source to target station",
		Args:        []string{"source", "target"},
	}, m.transfer)
	return m
}

// TransferDuration returns the modeled (un-jittered) duration of a transfer
// between two stations.
func TransferDuration(source, target string) time.Duration {
	s, okS := railOrder[source]
	t, okT := railOrder[target]
	dist := 1
	if okS && okT {
		dist = s - t
		if dist < 0 {
			dist = -dist
		}
		if dist == 0 {
			dist = 1
		}
	}
	return PickDuration + PlaceDuration + time.Duration(dist)*TravelPerStation
}

func (m *Module) transfer(ctx context.Context, args wei.Args) (wei.Result, error) {
	source, ok := args["source"].(string)
	if !ok || source == "" {
		return nil, fmt.Errorf("pf400: transfer requires string arg %q", "source")
	}
	target, ok := args["target"].(string)
	if !ok || target == "" {
		return nil, fmt.Errorf("pf400: transfer requires string arg %q", "target")
	}
	m.timing.Work(TransferDuration(source, target))
	if err := m.world.MovePlate(source, target); err != nil {
		return nil, err
	}
	return wei.Result{"source": source, "target": target}, nil
}
