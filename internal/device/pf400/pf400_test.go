package pf400

import (
	"context"
	"errors"
	"testing"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
)

func setup(t *testing.T) (*Module, *device.World, *sim.SimClock) {
	t.Helper()
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 2)
	return New("pf400", world, nil), world, clock
}

func TestTransferMovesAndTakesTime(t *testing.T) {
	m, world, clock := setup(t)
	if _, err := world.TakeNewPlate(device.LocSciclopsExchange); err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	_, err := m.Act(context.Background(), "transfer",
		map[string]any{"source": device.LocSciclopsExchange, "target": device.LocCamera})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := world.PlateAt(device.LocCamera); err != nil {
		t.Fatal("plate not moved")
	}
	want := TransferDuration(device.LocSciclopsExchange, device.LocCamera)
	if got := clock.Now().Sub(start); got != want {
		t.Fatalf("duration %v, want %v", got, want)
	}
}

func TestTransferToTrashDisposes(t *testing.T) {
	m, world, _ := setup(t)
	world.TakeNewPlate(device.LocCamera)
	if _, err := m.Act(context.Background(), "transfer",
		map[string]any{"source": device.LocCamera, "target": device.LocTrash}); err != nil {
		t.Fatal(err)
	}
	if len(world.TrashedPlates()) != 1 {
		t.Fatal("plate not trashed")
	}
}

func TestTransferValidation(t *testing.T) {
	m, world, _ := setup(t)
	ctx := context.Background()
	if _, err := m.Act(ctx, "transfer", map[string]any{"target": "x"}); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := m.Act(ctx, "transfer", map[string]any{"source": "x"}); err == nil {
		t.Fatal("missing target accepted")
	}
	if _, err := m.Act(ctx, "transfer", map[string]any{"source": 3, "target": "x"}); err == nil {
		t.Fatal("non-string source accepted")
	}
	_, err := m.Act(ctx, "transfer",
		map[string]any{"source": device.LocCamera, "target": device.LocOT2Deck})
	if !errors.Is(err, device.ErrNoPlate) {
		t.Fatalf("empty-source err = %v", err)
	}
	_ = world
}

func TestTransferDurationRailDistances(t *testing.T) {
	camOT2 := TransferDuration(device.LocCamera, device.LocOT2Deck)
	exCam := TransferDuration(device.LocSciclopsExchange, device.LocCamera)
	if camOT2 <= exCam {
		t.Fatalf("2-station move %v not longer than 1-station %v", camOT2, exCam)
	}
	// Unknown stations get the 1-station default.
	unknown := TransferDuration("ot2_b.deck", device.LocCamera)
	if unknown != PickDuration+PlaceDuration+TravelPerStation {
		t.Fatalf("unknown-station duration %v", unknown)
	}
	// Same-station reposition still costs one travel unit.
	same := TransferDuration(device.LocCamera, device.LocCamera)
	if same != PickDuration+PlaceDuration+TravelPerStation {
		t.Fatalf("same-station duration %v", same)
	}
}

func TestConcurrentTransfersQueue(t *testing.T) {
	// Two callers using one arm must serialize: total elapsed = 2 transfers.
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 2)
	m := New("pf400", world, nil)
	world.TakeNewPlate(device.LocSciclopsExchange)
	world.TakeNewPlate(device.LocCamera)

	clock.AddWorker(2)
	done := make(chan error, 2)
	go func() {
		_, err := m.Act(context.Background(), "transfer",
			map[string]any{"source": device.LocSciclopsExchange, "target": device.LocOT2Deck})
		clock.DoneWorker()
		done <- err
	}()
	go func() {
		_, err := m.Act(context.Background(), "transfer",
			map[string]any{"source": device.LocCamera, "target": device.LocTrash})
		clock.DoneWorker()
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now().Sub(sim.Epoch)
	d1 := TransferDuration(device.LocSciclopsExchange, device.LocOT2Deck)
	d2 := TransferDuration(device.LocCamera, device.LocTrash)
	if elapsed < d1+d2 {
		t.Fatalf("concurrent arm use overlapped: %v < %v", elapsed, d1+d2)
	}
	_ = time.Second
}
