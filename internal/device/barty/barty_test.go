package barty

import (
	"context"
	"testing"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
)

func setup(t *testing.T) (*Module, *device.World, *sim.SimClock) {
	t.Helper()
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 1)
	world.RegisterReservoirs("ot2")
	return New("barty", world, nil), world, clock
}

func TestFillColorsFillsAll(t *testing.T) {
	m, world, _ := setup(t)
	res, err := m.Act(context.Background(), "fill_colors", map[string]any{"module": "ot2"})
	if err != nil {
		t.Fatal(err)
	}
	added := res["added_ul"].([]any)
	if len(added) != 4 || added[0] != device.ReservoirCapacityUL {
		t.Fatalf("added = %v", added)
	}
	rs, _ := world.Reservoirs("ot2")
	for _, r := range rs {
		if r.Volume() != r.Capacity {
			t.Fatalf("%s not full", r.Name)
		}
	}
}

func TestDrainColorsEmptiesAll(t *testing.T) {
	m, world, _ := setup(t)
	rs, _ := world.Reservoirs("ot2")
	for _, r := range rs {
		r.Fill(1000)
	}
	res, err := m.Act(context.Background(), "drain_colors", map[string]any{"module": "ot2"})
	if err != nil {
		t.Fatal(err)
	}
	drained := res["drained_ul"].([]any)
	if drained[0] != 1000.0 {
		t.Fatalf("drained = %v", drained)
	}
	for _, r := range rs {
		if r.Volume() != 0 {
			t.Fatalf("%s not empty", r.Name)
		}
	}
}

func TestRefillReplacesContents(t *testing.T) {
	m, world, _ := setup(t)
	rs, _ := world.Reservoirs("ot2")
	rs[2].Fill(123)
	if _, err := m.Act(context.Background(), "refill_colors", map[string]any{"module": "ot2"}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Volume() != r.Capacity {
			t.Fatalf("%s = %v after refill", r.Name, r.Volume())
		}
	}
}

func TestPumpTimeProportionalToVolume(t *testing.T) {
	m, world, clock := setup(t)
	rs, _ := world.Reservoirs("ot2")
	// Pre-fill 80%: only 5000µL deficit → 20s pumping + setup.
	for _, r := range rs {
		r.Fill(r.Capacity * 0.8)
	}
	start := clock.Now()
	if _, err := m.Act(context.Background(), "fill_colors", map[string]any{"module": "ot2"}); err != nil {
		t.Fatal(err)
	}
	want := SetupDuration + time.Duration(0.2*device.ReservoirCapacityUL/PumpRateULPerSec*float64(time.Second))
	if got := clock.Now().Sub(start); got != want {
		t.Fatalf("duration %v, want %v", got, want)
	}
}

func TestUnknownModuleAndMissingArg(t *testing.T) {
	m, _, _ := setup(t)
	ctx := context.Background()
	for _, action := range []string{"fill_colors", "drain_colors", "refill_colors"} {
		if _, err := m.Act(ctx, action, map[string]any{"module": "ghost"}); err == nil {
			t.Fatalf("%s: unknown module accepted", action)
		}
		if _, err := m.Act(ctx, action, nil); err == nil {
			t.Fatalf("%s: missing module arg accepted", action)
		}
	}
}
