// Package barty simulates RPL's custom liquid replenisher: "a robot
// developed in RPL with four peristaltic pumps that transfer liquid from
// large storage vessels to the reservoirs of the ot2. Our application
// instructs barty to refill the ot2 reservoirs periodically so that
// experiments can run for extended periods."
//
// barty is the device the paper adds over its earlier color-picker version;
// without it the experiment would halt when reservoirs empty.
package barty

import (
	"context"
	"fmt"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
	"colormatch/internal/wei"
)

// PumpRateULPerSec is the peristaltic pump transfer rate. All four pumps
// run concurrently, so a fill's duration is set by the largest deficit.
const PumpRateULPerSec = 250.0

// SetupDuration covers hose priming per command.
const SetupDuration = 10 * time.Second

// Module is the barty WEI module.
type Module struct {
	*wei.Base
	world  *device.World
	timing *device.Timing
}

// New returns a barty module bound to the world.
func New(name string, world *device.World, rng *sim.RNG) *Module {
	m := &Module{
		Base:   wei.NewBase(name, "liquid_replenisher", "Barty peristaltic-pump liquid replenisher (simulated)"),
		world:  world,
		timing: &device.Timing{Clock: world.Clock, RNG: rng, Jitter: 0.05},
	}
	m.Register(wei.ActionInfo{
		Name:        "fill_colors",
		Description: "pump dye from storage vessels until the target module's reservoirs are full",
		Args:        []string{"module"},
	}, m.fillColors)
	m.Register(wei.ActionInfo{
		Name:        "drain_colors",
		Description: "drain the target module's reservoirs",
		Args:        []string{"module"},
	}, m.drainColors)
	m.Register(wei.ActionInfo{
		Name:        "refill_colors",
		Description: "drain then refill the target module's reservoirs with fresh dye",
		Args:        []string{"module"},
	}, m.refillColors)
	return m
}

func (m *Module) target(args wei.Args) (string, error) {
	mod, ok := args["module"].(string)
	if !ok || mod == "" {
		return "", fmt.Errorf("barty: action requires string arg %q", "module")
	}
	return mod, nil
}

func (m *Module) fillColors(ctx context.Context, args wei.Args) (wei.Result, error) {
	mod, err := m.target(args)
	if err != nil {
		return nil, err
	}
	rs, err := m.world.Reservoirs(mod)
	if err != nil {
		return nil, err
	}
	m.timing.Work(SetupDuration)
	maxAdded := 0.0
	added := make([]any, len(rs))
	for i, r := range rs {
		a := r.Fill(r.Capacity - r.Volume())
		added[i] = a
		if a > maxAdded {
			maxAdded = a
		}
	}
	m.timing.Work(time.Duration(maxAdded / PumpRateULPerSec * float64(time.Second)))
	return wei.Result{"module": mod, "added_ul": added}, nil
}

func (m *Module) drainColors(ctx context.Context, args wei.Args) (wei.Result, error) {
	mod, err := m.target(args)
	if err != nil {
		return nil, err
	}
	rs, err := m.world.Reservoirs(mod)
	if err != nil {
		return nil, err
	}
	m.timing.Work(SetupDuration)
	maxDrained := 0.0
	drained := make([]any, len(rs))
	for i, r := range rs {
		d := r.Drain()
		drained[i] = d
		if d > maxDrained {
			maxDrained = d
		}
	}
	m.timing.Work(time.Duration(maxDrained / PumpRateULPerSec * float64(time.Second)))
	return wei.Result{"module": mod, "drained_ul": drained}, nil
}

func (m *Module) refillColors(ctx context.Context, args wei.Args) (wei.Result, error) {
	if _, err := m.drainColors(ctx, args); err != nil {
		return nil, err
	}
	return m.fillColors(ctx, args)
}
