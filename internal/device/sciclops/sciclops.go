// Package sciclops simulates the Hudson SciClops microplate handler: "a
// microplate storage and staging system that can access multiple storage
// towers, facilitating the housing of plates." Its single robotic action
// fetches a fresh plate from the towers and stages it at the exchange
// location, where the pf400 picks it up.
package sciclops

import (
	"context"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
	"colormatch/internal/wei"
)

// GetPlateDuration is the modeled time for a tower fetch and stage.
const GetPlateDuration = 30 * time.Second

// Module is the sciclops WEI module.
type Module struct {
	*wei.Base
	world  *device.World
	timing *device.Timing
}

// New returns a sciclops module bound to the world. rng drives timing
// jitter and may be nil for deterministic durations.
func New(name string, world *device.World, rng *sim.RNG) *Module {
	m := &Module{
		Base:   wei.NewBase(name, "plate_crane", "Hudson SciClops microplate storage and staging system (simulated)"),
		world:  world,
		timing: &device.Timing{Clock: world.Clock, RNG: rng, Jitter: 0.05},
	}
	m.Register(wei.ActionInfo{
		Name:        "get_plate",
		Description: "fetch a fresh plate from the storage towers and stage it at the exchange",
	}, m.getPlate)
	m.Register(wei.ActionInfo{
		Name:        "status",
		Description: "report remaining plate stock",
	}, m.status)
	return m
}

func (m *Module) getPlate(ctx context.Context, args wei.Args) (wei.Result, error) {
	m.timing.Work(GetPlateDuration)
	p, err := m.world.TakeNewPlate(device.LocSciclopsExchange)
	if err != nil {
		return nil, err
	}
	return wei.Result{"plate_id": p.ID, "location": device.LocSciclopsExchange}, nil
}

func (m *Module) status(ctx context.Context, args wei.Args) (wei.Result, error) {
	return wei.Result{"plates_remaining": float64(m.world.StockRemaining())}, nil
}
