package sciclops

import (
	"context"
	"errors"
	"testing"
	"time"

	"colormatch/internal/device"
	"colormatch/internal/sim"
)

func TestGetPlateStagesAtExchange(t *testing.T) {
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 2)
	m := New("sciclops", world, nil)

	res, err := m.Act(context.Background(), "get_plate", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res["location"] != device.LocSciclopsExchange {
		t.Fatalf("location = %v", res["location"])
	}
	if _, err := world.PlateAt(device.LocSciclopsExchange); err != nil {
		t.Fatal("plate not staged")
	}
	if got := clock.Now().Sub(sim.Epoch); got != GetPlateDuration {
		t.Fatalf("duration %v, want %v", got, GetPlateDuration)
	}
}

func TestGetPlateFailsWhenStockEmpty(t *testing.T) {
	world := device.NewWorld(sim.NewSimClock(), 0)
	m := New("sciclops", world, nil)
	_, err := m.Act(context.Background(), "get_plate", nil)
	if !errors.Is(err, device.ErrNoStock) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatusReportsStock(t *testing.T) {
	world := device.NewWorld(sim.NewSimClock(), 5)
	m := New("sciclops", world, nil)
	res, err := m.Act(context.Background(), "status", nil)
	if err != nil || res["plates_remaining"] != 5.0 {
		t.Fatalf("status = %v, %v", res, err)
	}
}

func TestAboutListsActions(t *testing.T) {
	m := New("sciclops", device.NewWorld(sim.NewSimClock(), 1), nil)
	info := m.About()
	if info.Type != "plate_crane" || len(info.Actions) != 2 {
		t.Fatalf("about = %+v", info)
	}
}

func TestTimingJitterStaysBounded(t *testing.T) {
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 10)
	m := New("sciclops", world, sim.NewRNG(1))
	start := clock.Now()
	if _, err := m.Act(context.Background(), "get_plate", nil); err != nil {
		t.Fatal(err)
	}
	d := clock.Now().Sub(start)
	if d < time.Duration(float64(GetPlateDuration)*0.95) || d > time.Duration(float64(GetPlateDuration)*1.05) {
		t.Fatalf("jittered duration %v outside ±5%% of %v", d, GetPlateDuration)
	}
}
