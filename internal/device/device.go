// Package device provides the shared physical-world model that the five
// instrument simulators (sciclops, pf400, ot2, barty, camera) operate on:
// where plates are, what liquids wells and reservoirs hold, and how much
// plate stock remains in the storage towers.
//
// The World is what makes the simulated workcell honest: the OT-2 can only
// dispense into a plate that the PF400 actually delivered to its deck, the
// camera can only photograph the plate on its mount, and reservoirs only
// hold what barty pumped into them. The application cannot cheat around the
// workflows — exactly as on the physical RPL workcell.
package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"colormatch/internal/color/mix"
	"colormatch/internal/labware"
	"colormatch/internal/sim"
)

// Well-known locations of the single-OT2 RPL workcell. A second liquid
// handler introduces its own deck location via DeckLocation.
const (
	LocSciclopsExchange = "sciclops.exchange"
	LocCamera           = "camera"
	LocOT2Deck          = "ot2.deck"
	LocTrash            = "trash"
)

// DeckLocation returns the deck location of a liquid-handler module.
func DeckLocation(module string) string { return module + ".deck" }

// WellVolumeUL is the total liquid volume dispensed per well by the
// color-picker protocol.
const WellVolumeUL = 275.0

// ReservoirCapacityUL is the capacity of each OT-2 dye reservoir.
const ReservoirCapacityUL = 25000.0

// World is the shared physical state of the simulated workcell.
type World struct {
	Clock sim.Clock
	Model *mix.Model // dye optics, shared by the OT-2 contents and the camera

	mu         sync.Mutex
	plates     map[string]*labware.Plate
	reservoirs map[string][]*labware.Reservoir
	plateSeq   int
	stock      int
	trashed    []*labware.Plate
}

// NewWorld returns a world with the given plate stock in the sciclops
// towers.
func NewWorld(clock sim.Clock, stockPlates int) *World {
	return &World{
		Clock:      clock,
		Model:      mix.NewModel(),
		plates:     make(map[string]*labware.Plate),
		reservoirs: make(map[string][]*labware.Reservoir),
		stock:      stockPlates,
	}
}

// Errors returned by world operations. They model real mechanical failure
// modes (two plates cannot occupy one nest; an empty tower yields nothing).
var (
	ErrNoPlate      = errors.New("device: no plate at location")
	ErrOccupied     = errors.New("device: location already holds a plate")
	ErrNoStock      = errors.New("device: plate storage towers are empty")
	ErrNoReservoirs = errors.New("device: module has no registered reservoirs")
	ErrUnknownDye   = errors.New("device: unknown dye index")
)

// RegisterReservoirs creates one reservoir per dye of the world's mix model
// for the given liquid-handler module.
func (w *World) RegisterReservoirs(module string) []*labware.Reservoir {
	w.mu.Lock()
	defer w.mu.Unlock()
	rs := make([]*labware.Reservoir, w.Model.NumDyes())
	for i, d := range w.Model.Dyes {
		rs[i] = labware.NewReservoir(fmt.Sprintf("%s/%s", module, d.Name), ReservoirCapacityUL)
	}
	w.reservoirs[module] = rs
	return rs
}

// Reservoirs returns the reservoir set of a liquid-handler module.
func (w *World) Reservoirs(module string) ([]*labware.Reservoir, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rs, ok := w.reservoirs[module]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoReservoirs, module)
	}
	return rs, nil
}

// TakeNewPlate removes a plate from stock and places it at loc.
func (w *World) TakeNewPlate(loc string) (*labware.Plate, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stock <= 0 {
		return nil, ErrNoStock
	}
	if _, occupied := w.plates[loc]; occupied {
		return nil, fmt.Errorf("%w: %s", ErrOccupied, loc)
	}
	w.stock--
	w.plateSeq++
	p := labware.NewPlate(fmt.Sprintf("plate-%03d", w.plateSeq))
	w.plates[loc] = p
	return p, nil
}

// PlateAt returns the plate at loc.
func (w *World) PlateAt(loc string) (*labware.Plate, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.plates[loc]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoPlate, loc)
	}
	return p, nil
}

// MovePlate transfers the plate at from to to. Moving to LocTrash disposes
// of the plate.
func (w *World) MovePlate(from, to string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.plates[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoPlate, from)
	}
	if to == LocTrash {
		delete(w.plates, from)
		w.trashed = append(w.trashed, p)
		return nil
	}
	if _, occupied := w.plates[to]; occupied {
		return fmt.Errorf("%w: %s", ErrOccupied, to)
	}
	delete(w.plates, from)
	w.plates[to] = p
	return nil
}

// StockRemaining returns the number of fresh plates left in the towers.
func (w *World) StockRemaining() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stock
}

// TrashedPlates returns the disposed plates, oldest first.
func (w *World) TrashedPlates() []*labware.Plate {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*labware.Plate, len(w.trashed))
	copy(out, w.trashed)
	return out
}

// Timing models an instrument's action durations and its single-unit
// nature: a modeled base duration perturbed by a small uniform jitter,
// executed against a busy-until reservation so that concurrent callers
// queue — one physical arm cannot perform two transfers at once. Work is a
// discrete-event resource acquisition: with the virtual clock, a caller
// finding the instrument busy sleeps (in virtual time) until its
// reservation starts, exactly like a command queued at a device computer.
type Timing struct {
	Clock  sim.Clock
	RNG    *sim.RNG
	Jitter float64 // fractional jitter, e.g. 0.05 for ±5%

	mu        sync.Mutex
	busyUntil time.Time
}

// Work reserves the instrument for the jittered duration, sleeping through
// any queueing delay plus the work itself. It returns the work duration
// (excluding queueing).
func (t *Timing) Work(d time.Duration) time.Duration {
	actual := d
	if t.RNG != nil && t.Jitter > 0 {
		actual = time.Duration(t.RNG.Jitter(float64(d), t.Jitter))
	}
	t.mu.Lock()
	now := t.Clock.Now()
	start := now
	if t.busyUntil.After(start) {
		start = t.busyUntil
	}
	end := start.Add(actual)
	t.busyUntil = end
	t.mu.Unlock()
	t.Clock.Sleep(end.Sub(now))
	return actual
}
