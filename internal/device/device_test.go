package device

import (
	"errors"
	"testing"
	"time"

	"colormatch/internal/sim"
)

func TestWorldPlateLifecycle(t *testing.T) {
	w := NewWorld(sim.NewSimClock(), 2)
	if w.StockRemaining() != 2 {
		t.Fatalf("stock = %d", w.StockRemaining())
	}
	p, err := w.TakeNewPlate(LocSciclopsExchange)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "plate-001" {
		t.Fatalf("plate id %q", p.ID)
	}
	if _, err := w.TakeNewPlate(LocSciclopsExchange); !errors.Is(err, ErrOccupied) {
		t.Fatalf("double-stage err = %v", err)
	}
	if err := w.MovePlate(LocSciclopsExchange, LocCamera); err != nil {
		t.Fatal(err)
	}
	got, err := w.PlateAt(LocCamera)
	if err != nil || got != p {
		t.Fatalf("PlateAt = %v, %v", got, err)
	}
	if _, err := w.PlateAt(LocSciclopsExchange); !errors.Is(err, ErrNoPlate) {
		t.Fatalf("vacated location err = %v", err)
	}
	if err := w.MovePlate(LocCamera, LocTrash); err != nil {
		t.Fatal(err)
	}
	if n := len(w.TrashedPlates()); n != 1 {
		t.Fatalf("trashed = %d", n)
	}
	// Second plate, then stock runs out.
	if _, err := w.TakeNewPlate(LocSciclopsExchange); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TakeNewPlate(LocCamera); !errors.Is(err, ErrNoStock) {
		t.Fatalf("empty stock err = %v", err)
	}
}

func TestWorldMoveErrors(t *testing.T) {
	w := NewWorld(sim.NewSimClock(), 3)
	if err := w.MovePlate(LocCamera, LocOT2Deck); !errors.Is(err, ErrNoPlate) {
		t.Fatalf("move from empty: %v", err)
	}
	if _, err := w.TakeNewPlate(LocCamera); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TakeNewPlate(LocOT2Deck); err != nil {
		t.Fatal(err)
	}
	if err := w.MovePlate(LocCamera, LocOT2Deck); !errors.Is(err, ErrOccupied) {
		t.Fatalf("move to occupied: %v", err)
	}
}

func TestWorldReservoirs(t *testing.T) {
	w := NewWorld(sim.NewSimClock(), 1)
	if _, err := w.Reservoirs("ot2"); !errors.Is(err, ErrNoReservoirs) {
		t.Fatalf("unregistered reservoirs: %v", err)
	}
	rs := w.RegisterReservoirs("ot2")
	if len(rs) != w.Model.NumDyes() {
		t.Fatalf("%d reservoirs for %d dyes", len(rs), w.Model.NumDyes())
	}
	got, err := w.Reservoirs("ot2")
	if err != nil || len(got) != len(rs) {
		t.Fatalf("Reservoirs = %v, %v", got, err)
	}
	if rs[0].Capacity != ReservoirCapacityUL {
		t.Fatalf("capacity = %v", rs[0].Capacity)
	}
}

func TestTimingAdvancesClock(t *testing.T) {
	clock := sim.NewSimClock()
	tm := Timing{Clock: clock}
	spent := tm.Work(42 * time.Second)
	if spent != 42*time.Second {
		t.Fatalf("spent = %v", spent)
	}
	if clock.Now().Sub(sim.Epoch) != 42*time.Second {
		t.Fatalf("clock advanced %v", clock.Now().Sub(sim.Epoch))
	}
}

func TestTimingJitterBounded(t *testing.T) {
	clock := sim.NewSimClock()
	tm := Timing{Clock: clock, RNG: sim.NewRNG(1), Jitter: 0.05}
	for i := 0; i < 100; i++ {
		spent := tm.Work(100 * time.Second)
		if spent < 95*time.Second || spent > 105*time.Second {
			t.Fatalf("jittered duration %v outside ±5%%", spent)
		}
	}
}

func TestDeckLocation(t *testing.T) {
	if DeckLocation("ot2") != LocOT2Deck {
		t.Fatalf("DeckLocation(ot2) = %q", DeckLocation("ot2"))
	}
	if DeckLocation("ot2_b") != "ot2_b.deck" {
		t.Fatalf("DeckLocation(ot2_b) = %q", DeckLocation("ot2_b"))
	}
}
