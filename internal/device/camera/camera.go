// Package camera simulates the workcell's imaging module: "a Logitech
// webcam mounted with a ring light that is used to capture images of the
// microplate. This module incorporates a microplate mount designed to allow
// the pf400 to place the microplate in the same location each time."
//
// take_picture renders a synthetic photograph of the plate currently on the
// camera mount — fiducial marker, plate body, and each well's liquid color
// computed from its actual dye contents via the world's optical model — and
// returns it PNG-encoded, exactly as the application would receive a frame
// from the physical webcam. All color information the solvers ever see
// passes through these pixels.
package camera

import (
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"colormatch/internal/color"
	"colormatch/internal/color/mix"
	"colormatch/internal/device"
	"colormatch/internal/sim"
	"colormatch/internal/vision"
	"colormatch/internal/vision/aruco"
	"colormatch/internal/vision/render"
	"colormatch/internal/wei"
)

// ExposureDuration is the modeled capture time per frame.
const ExposureDuration = 2 * time.Second

// Module is the camera WEI module.
type Module struct {
	*wei.Base
	world  *device.World
	timing *device.Timing
	sensor *mix.Sensor
	dict   *aruco.Dictionary
	geom   render.Geometry
	rng    *sim.RNG

	// jitterX/Y model the slow drift of the camera between exposures; they
	// are resampled occasionally rather than per frame, like a bumped tripod.
	jitterX, jitterY float64
	frames           int
}

// New returns a camera module bound to the world. rng drives sensor noise
// and camera drift; nil disables both.
func New(name string, world *device.World, rng *sim.RNG) *Module {
	var sensorRNG *sim.RNG
	if rng != nil {
		sensorRNG = rng.Derive("sensor")
	}
	m := &Module{
		Base:   wei.NewBase(name, "camera", "ring-lit webcam over the plate mount (simulated)"),
		world:  world,
		timing: &device.Timing{Clock: world.Clock, RNG: rng, Jitter: 0.1},
		sensor: mix.NewSensor(sensorRNG),
		dict:   aruco.Default(),
		geom:   render.Default(),
		rng:    rng,
	}
	m.Register(wei.ActionInfo{
		Name:        "take_picture",
		Description: "photograph the plate on the camera mount; returns a PNG frame",
	}, m.takePicture)
	return m
}

// Dict exposes the fiducial dictionary (the application's analyzer must use
// the same one).
func (m *Module) Dict() *aruco.Dictionary { return m.dict }

// Geometry exposes the camera-frame geometry.
func (m *Module) Geometry() render.Geometry { return m.geom }

func (m *Module) takePicture(ctx context.Context, args wei.Args) (wei.Result, error) {
	plate, err := m.world.PlateAt(device.LocCamera)
	if err != nil {
		return nil, fmt.Errorf("camera: nothing on the mount: %w", err)
	}
	m.timing.Work(ExposureDuration)

	// Drift the camera slightly every few frames.
	if m.rng != nil && m.frames%8 == 0 {
		m.jitterX = m.rng.Uniform(-6, 6)
		m.jitterY = m.rng.Uniform(-6, 6)
	}
	m.frames++

	scene := render.NewScene()
	scene.Geom = m.geom
	scene.JitterX, scene.JitterY = m.jitterX, m.jitterY
	model := m.world.Model
	scene.SetPlate(plate, func(volumes []float64) (color.RGB8, bool) {
		lin, err := model.MixVolumes(volumes)
		if err != nil {
			return color.RGB8{}, false
		}
		return m.sensor.Observe(lin), true
	})

	var pixelRNG *sim.RNG
	if m.rng != nil {
		pixelRNG = m.rng.Derive(fmt.Sprintf("frame-%d", m.frames))
	}
	img := scene.Render(m.dict, pixelRNG)
	data, err := vision.EncodePNG(img)
	if err != nil {
		return nil, fmt.Errorf("camera: encode frame: %w", err)
	}
	return wei.Result{
		"image_png":  base64.StdEncoding.EncodeToString(data),
		"plate_id":   plate.ID,
		"wells_used": float64(plate.Used()),
		"frame":      float64(m.frames),
	}, nil
}

// DecodeFrame extracts the PNG bytes from a take_picture result, accepting
// both the in-process and HTTP-JSON encodings.
func DecodeFrame(res wei.Result) ([]byte, error) {
	v, ok := res["image_png"]
	if !ok {
		return nil, fmt.Errorf("camera: result has no image_png")
	}
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("camera: image_png is %T, want base64 string", v)
	}
	data, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("camera: decode frame: %w", err)
	}
	return data, nil
}
