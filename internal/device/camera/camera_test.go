package camera

import (
	"context"
	"testing"

	"colormatch/internal/device"
	"colormatch/internal/labware"
	"colormatch/internal/sim"
	"colormatch/internal/vision"
	"colormatch/internal/wei"
)

func setup(t *testing.T, seed int64) (*Module, *device.World, *sim.SimClock) {
	t.Helper()
	clock := sim.NewSimClock()
	world := device.NewWorld(clock, 2)
	return New("camera", world, sim.NewRNG(seed)), world, clock
}

func TestTakePictureRequiresPlate(t *testing.T) {
	m, _, _ := setup(t, 1)
	if _, err := m.Act(context.Background(), "take_picture", nil); err == nil {
		t.Fatal("pictured empty mount")
	}
}

func TestTakePictureReturnsDecodablePNG(t *testing.T) {
	m, world, clock := setup(t, 2)
	p, _ := world.TakeNewPlate(device.LocCamera)
	if err := p.Dispense(labware.WellAt(0), []float64{60, 60, 60, 95}); err != nil {
		t.Fatal(err)
	}
	start := clock.Now()
	res, err := m.Act(context.Background(), "take_picture", nil)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(start) <= 0 {
		t.Fatal("exposure took no time")
	}
	frame, err := DecodeFrame(res)
	if err != nil {
		t.Fatal(err)
	}
	img, err := vision.DecodePNG(frame)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != m.Geometry().ImgW {
		t.Fatalf("frame width %d", img.Bounds().Dx())
	}
	if res["plate_id"] != p.ID || res["wells_used"] != 1.0 {
		t.Fatalf("metadata = %v", res)
	}
}

func TestFramesDifferUnderNoise(t *testing.T) {
	m, world, _ := setup(t, 3)
	world.TakeNewPlate(device.LocCamera)
	r1, err := m.Act(context.Background(), "take_picture", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Act(context.Background(), "take_picture", nil)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := DecodeFrame(r1)
	f2, _ := DecodeFrame(r2)
	if string(f1) == string(f2) {
		t.Fatal("two exposures produced identical frames (no noise?)")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame(wei.Result{}); err == nil {
		t.Fatal("missing image accepted")
	}
	if _, err := DecodeFrame(wei.Result{"image_png": 42}); err == nil {
		t.Fatal("non-string image accepted")
	}
	if _, err := DecodeFrame(wei.Result{"image_png": "!!!not base64!!!"}); err == nil {
		t.Fatal("bad base64 accepted")
	}
}

func TestCameraDriftIsBoundedAndAnalyzable(t *testing.T) {
	// Across many frames the drift must stay within what the marker-based
	// localization recovers: every frame stays analyzable.
	m, world, _ := setup(t, 4)
	p, _ := world.TakeNewPlate(device.LocCamera)
	for i := 0; i < 24; i++ {
		if err := p.Dispense(labware.WellAt(i), []float64{70, 50, 60, 95}); err != nil {
			t.Fatal(err)
		}
	}
	analyzer := vision.NewAnalyzer()
	for i := 0; i < 10; i++ {
		res, err := m.Act(context.Background(), "take_picture", nil)
		if err != nil {
			t.Fatal(err)
		}
		frame, _ := DecodeFrame(res)
		img, err := vision.DecodePNG(frame)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := analyzer.Analyze(img); err != nil {
			t.Fatalf("frame %d unanalyzable: %v", i, err)
		}
	}
}
