// Package colormatch is a Go reproduction of "Exploring Benchmarks for
// Self-Driving Labs using Color Matching" (Ginsburg et al., SC-W 2023): the
// Argonne RPL color-picker application, the WEI-style science-factory
// platform it runs on, simulated equivalents of the five workcell
// instruments, the §2.4 image-processing pipeline, the §2.5 decision
// procedures, and the harness that regenerates the paper's evaluation
// (Figure 3, Figure 4, Table 1).
//
// # Quick start
//
//	res, _, err := colormatch.Run(colormatch.Config{
//		Experiment:   "demo",
//		BatchSize:    8,
//		TotalSamples: 32,
//	}, colormatch.RunOptions{Seed: 1})
//	if err != nil { ... }
//	fmt.Printf("best color %v at score %.1f in %v\n",
//		res.Best.Color, res.Best.Score, res.Elapsed())
//
// Run builds a complete simulated workcell (plate crane, manipulator,
// liquid handler, replenisher, camera), wires the WEI engine and solver,
// and executes the closed loop in virtual time: an 8-hour experiment
// completes in seconds while reporting faithful timing.
//
// For finer control — distributed module servers, custom solvers, fault
// injection, multi-OT2 operation — compose the same pieces the facade uses;
// see the examples/ directory.
package colormatch

import (
	"colormatch/internal/color"
	"colormatch/internal/core"
	"colormatch/internal/experiments"
	"colormatch/internal/portal"
	"colormatch/internal/solver"
)

// Version identifies the library release.
const Version = "1.0.0"

// RGB is an 8-bit sRGB color. The paper's target is RGB(120,120,120).
type RGB = color.RGB8

// Metric selects the scoring function (Euclidean RGB or a ΔE variant).
type Metric = color.Metric

// Scoring metrics.
const (
	MetricEuclideanRGB = color.MetricEuclideanRGB
	MetricDeltaE76     = color.MetricDeltaE76
	MetricDeltaE94     = color.MetricDeltaE94
	MetricDeltaE2000   = color.MetricDeltaE2000
)

// Config parameterizes one color-matching experiment (batch size B, sample
// budget N, target color, solver-facing metric, and workcell options).
type Config = core.Config

// RunOptions select the solver, seed, fault plan and publishing behavior.
type RunOptions = experiments.RunOptions

// Result is a completed experiment: every sample, the Figure 4 trace, the
// Table 1 metrics, and the raw event log.
type Result = core.Result

// TracePoint is one sample of the best-score-so-far trajectory.
type TracePoint = core.TracePoint

// Sample is one mixed-and-measured color with its solver grade.
type Sample = solver.Sample

// Solver is the decision-procedure interface (Propose / Observe); implement
// it to plug a custom optimizer into the loop.
type Solver = solver.Solver

// BatchProposer optionally extends Solver for batch-aware decision
// procedures: the loop asks for the whole batch in one ProposeBatch call.
type BatchProposer = solver.BatchProposer

// PortalStore is the in-memory data portal records land in when publishing
// is enabled.
type PortalStore = portal.Store

// DefaultTarget is the paper's target color RGB=(120,120,120).
var DefaultTarget = core.DefaultTarget

// Run executes one color-picker experiment on a fresh simulated workcell.
// It returns the experiment result and, when opts.Publish is set, the
// portal store holding the published records.
func Run(cfg Config, opts RunOptions) (*Result, *PortalStore, error) {
	return experiments.RunOne(cfg, opts)
}

// NewSolver constructs one of the built-in solvers by name: "genetic" (the
// paper's evolutionary solver, random init), "genetic-grid" (uniform-grid
// init), "bayesian" (GP + expected improvement), "random", "grid", or
// "analytic" (the white-box oracle).
func NewSolver(name string, seed int64, target RGB) (Solver, error) {
	return experiments.NewSolver(name, newRNG(seed), target)
}
