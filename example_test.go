package colormatch_test

import (
	"fmt"
	"log"

	"colormatch"
)

// ExampleRun executes a small closed-loop experiment on the simulated
// workcell. Everything is seeded, so the output is exactly reproducible.
func ExampleRun() {
	res, _, err := colormatch.Run(colormatch.Config{
		Experiment:   "example",
		BatchSize:    8,
		TotalSamples: 16,
	}, colormatch.RunOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("samples: %d\n", len(res.Samples))
	fmt.Printf("best match: #%02x%02x%02x (score %.1f)\n",
		res.Best.Color.R, res.Best.Color.G, res.Best.Color.B, res.Best.Score)
	fmt.Printf("robot time: %s\n", res.Elapsed().Round(1e9*60))
	// Output:
	// samples: 16
	// best match: #535e87 (score 47.6)
	// robot time: 42m0s
}

// ExampleNewSolver shows plugging a built-in solver into a manually wired
// application, the composition Run performs internally.
func ExampleNewSolver() {
	wc := colormatch.NewWorkcell(colormatch.WorkcellOptions{Seed: 3})
	engine, _ := colormatch.NewEngine(wc.Registry, wc)
	sol, err := colormatch.NewSolver("analytic", 3, colormatch.DefaultTarget)
	if err != nil {
		log.Fatal(err)
	}
	app, err := colormatch.NewApp(colormatch.Config{
		Experiment:   "oracle",
		BatchSize:    4,
		TotalSamples: 4,
	}, engine, sol)
	if err != nil {
		log.Fatal(err)
	}
	res, err := app.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle reaches score %.0f with %d samples\n",
		res.Best.Score, len(res.Samples))
	// Output:
	// oracle reaches score 1 with 4 samples
}
