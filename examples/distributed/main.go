// Distributed: run the whole pipeline across process boundaries the way the
// physical deployment does — workcell modules behind one HTTP server (the
// device computers), the data portal behind another (ACDC), and the
// application driving both over the wire. Everything still runs in this one
// process for convenience, but every command and every published record
// crosses real HTTP.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"colormatch"
)

func main() {
	// The "device computers": one HTTP server exposing all five modules.
	wc := colormatch.NewWorkcell(colormatch.WorkcellOptions{Seed: 3})
	workcellSrv := httptest.NewServer(colormatch.ServeWorkcell(wc))
	defer workcellSrv.Close()

	// The data portal service.
	store := colormatch.NewPortalStore()
	portalSrv := httptest.NewServer(colormatch.ServePortal(store))
	defer portalSrv.Close()

	fmt.Printf("workcell at %s\nportal   at %s\n\n", workcellSrv.URL, portalSrv.URL)

	// The application: module commands via HTTP, publication via HTTP.
	client := colormatch.NewHTTPModuleClient(workcellSrv.URL, wc.Registry.Names()...)
	engine, _ := colormatch.NewEngine(client, wc)
	sol, err := colormatch.NewSolver("genetic", 3, colormatch.DefaultTarget)
	if err != nil {
		log.Fatal(err)
	}
	app, err := colormatch.NewApp(colormatch.Config{
		Experiment:   "distributed_demo",
		BatchSize:    8,
		TotalSamples: 24,
	}, engine, sol)
	if err != nil {
		log.Fatal(err)
	}
	app.EnablePublishing(colormatch.NewPublisher(wc), colormatch.NewPortalClient(portalSrv.URL))

	res, err := app.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment done: best #%02x%02x%02x score %.2f, %v of robot time\n\n",
		res.Best.Color.R, res.Best.Color.G, res.Best.Color.B,
		res.Best.Score, res.Elapsed().Round(1e9))

	// Query the portal back over HTTP, like a user browsing Figure 3.
	pc := colormatch.NewPortalClient(portalSrv.URL)
	sum, err := pc.Summary("distributed_demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("portal summary: %d runs, %d samples, best score %.2f, %d image(s)\n",
		sum.Runs, sum.Samples, sum.BestScore, sum.Images)
	recs, err := pc.Search("distributed_demo", 1)
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) > 0 {
		full, err := pc.Get(recs[0].ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("record %s: fields=%d, plate image %d bytes\n",
			full.ID, len(full.Fields), len(full.Files["plate.png"]))
	}
}
