// Quickstart: run one closed-loop color-matching experiment on the
// simulated workcell and print what the paper's Figure 4 would show for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"colormatch"
)

func main() {
	// B=8, N=64: the genetic solver proposes 8 colors per iteration; the
	// workcell mixes them, photographs the plate, and feeds the scores
	// back. Virtual time makes the 3-hour experiment finish in seconds.
	res, _, err := colormatch.Run(colormatch.Config{
		Experiment:   "quickstart",
		BatchSize:    8,
		TotalSamples: 64,
	}, colormatch.RunOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target color: #%02x%02x%02x\n",
		colormatch.DefaultTarget.R, colormatch.DefaultTarget.G, colormatch.DefaultTarget.B)
	fmt.Printf("best match:   #%02x%02x%02x  (score %.2f)\n",
		res.Best.Color.R, res.Best.Color.G, res.Best.Color.B, res.Best.Score)
	fmt.Printf("experiment:   %v of robot time, %d plates\n\n",
		res.Elapsed().Round(1e9), res.Plates)

	fmt.Println("best-score-so-far trajectory:")
	for _, p := range res.Trace {
		if p.Sample%8 == 0 {
			fmt.Printf("  after %3d samples (%6.1f min): %6.2f\n",
				p.Sample, p.Elapsed.Minutes(), p.Best)
		}
	}

	fmt.Println("\nSDL metrics for this run (paper Table 1 format):")
	fmt.Printf("  time without humans:  %v\n", res.Metrics.TWH.Round(1e9))
	fmt.Printf("  completed commands:   %d\n", res.Metrics.CCWH)
	fmt.Printf("  synthesis time:       %v\n", res.Metrics.SynthesisTime.Round(1e9))
	fmt.Printf("  transfer time:        %v\n", res.Metrics.TransferTime.Round(1e9))
	fmt.Printf("  time per color:       %v\n", res.Metrics.TimePerColor.Round(1e9))
}
