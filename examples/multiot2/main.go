// Multiot2: the paper's proposed future experiment (§4) — "integrating
// additional OT2s in our workflow, so that multiple plates of colors could
// be mixed at once. This would lead to an increase in CCWH, but potentially
// a lower TWH for the same experimental results."
//
// Two application loops run concurrently against one workcell with two
// liquid handlers; they share the plate crane, the arm and the camera
// (serialized by a camera gate), while protocol time overlaps in virtual
// time exactly as it would on real hardware.
//
//	go run ./examples/multiot2
package main

import (
	"fmt"
	"log"
	"os"

	"colormatch"
)

func main() {
	res, err := colormatch.MultiOT2(42, 48)
	if err != nil {
		log.Fatal(err)
	}
	res.Render(os.Stdout)

	fmt.Println("\nAs the paper predicts: completed commands (CCWH) go up —")
	fmt.Println("more plate logistics for the same colors — while wall time drops")
	fmt.Println("because the two OT-2 protocols overlap.")
}
