// Customsolver: plug a user-defined decision procedure into the loop. The
// paper stresses that the platform permits "the use of alternative
// optimization methods for continuous refinement" without touching any
// other part of the system — this example demonstrates exactly that by
// implementing a coordinate-wise hill climber and racing it against the
// built-in genetic solver on a chromatic (non-gray) target.
//
//	go run ./examples/customsolver
package main

import (
	"fmt"
	"log"

	"colormatch"
)

// hillClimber is a minimal custom Solver: it tracks the best recipe seen
// and proposes single-coordinate perturbations of it, shrinking the step
// when a batch brings no improvement.
type hillClimber struct {
	dim   int
	step  float64
	best  []float64
	score float64
	next  int // coordinate cursor
	seed  uint64
}

func newHillClimber() *hillClimber {
	return &hillClimber{
		dim:   4,
		step:  0.25,
		best:  []float64{0.25, 0.25, 0.25, 0.25},
		score: -1,
	}
}

func (h *hillClimber) Name() string { return "hill-climber" }

func (h *hillClimber) Propose(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		cand := append([]float64(nil), h.best...)
		coord := h.next % h.dim
		dir := 1.0
		if (h.next/h.dim)%2 == 1 {
			dir = -1
		}
		h.next++
		cand[coord] += dir * h.step
		out[i] = normalize(cand)
	}
	return out
}

func (h *hillClimber) Observe(samples []colormatch.Sample) {
	improved := false
	for _, s := range samples {
		if h.score < 0 || s.Score < h.score {
			h.score = s.Score
			h.best = append(h.best[:0], s.Ratios...)
			improved = true
		}
	}
	if !improved {
		h.step *= 0.7 // anneal
		if h.step < 0.01 {
			h.step = 0.01
		}
	}
}

func normalize(v []float64) []float64 {
	total := 0.0
	for i, x := range v {
		if x < 0 {
			v[i] = 0
		} else {
			total += x
		}
	}
	if total == 0 {
		for i := range v {
			v[i] = 1 / float64(len(v))
		}
		return v
	}
	for i := range v {
		v[i] /= total
	}
	return v
}

func main() {
	target := colormatch.RGB{R: 70, G: 130, B: 140} // muted teal
	cfg := colormatch.Config{
		Experiment:   "customsolver",
		Target:       target,
		BatchSize:    4,
		TotalSamples: 48,
	}

	// Custom solver: wire the loop manually through the advanced API.
	wc := colormatch.NewWorkcell(colormatch.WorkcellOptions{Seed: 11})
	engine, _ := colormatch.NewEngine(wc.Registry, wc)
	app, err := colormatch.NewApp(cfg, engine, newHillClimber())
	if err != nil {
		log.Fatal(err)
	}
	custom, err := app.Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	// Built-in genetic solver on the identical workload via the facade.
	genetic, _, err := colormatch.Run(cfg, colormatch.RunOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target #%02x%02x%02x over %d samples:\n\n", target.R, target.G, target.B, cfg.TotalSamples)
	rows := []struct {
		label string
		r     *colormatch.Result
	}{
		{"hill-climber", custom},
		{"genetic", genetic},
	}
	for _, row := range rows {
		fmt.Printf("  %-12s best #%02x%02x%02x  score %6.2f  in %v\n",
			row.label,
			row.r.Best.Color.R, row.r.Best.Color.G, row.r.Best.Color.B,
			row.r.Best.Score, row.r.Elapsed().Round(1e9))
	}
	fmt.Println("\n(no other part of the system changed to swap the decision procedure)")
}
