// Batchsweep: reproduce the paper's Figure 4 trade-off — smaller batches
// take longer but match the target color more accurately — at a reduced
// sample budget so it runs in a few seconds.
//
//	go run ./examples/batchsweep
package main

import (
	"fmt"
	"log"
	"os"

	"colormatch"
)

func main() {
	// The paper sweeps B ∈ {1,2,4,8,16,32,64} at N=128. The same sweep at
	// N=64 preserves the crossover shape and runs quickly; pass nil batches
	// and samples=128 for the full reproduction (as cmd/experiment -fig4
	// and the benchmarks do).
	fig4, err := colormatch.Figure4(2023, 64, []int{1, 4, 16, 64})
	if err != nil {
		log.Fatal(err)
	}
	fig4.Render(os.Stdout)

	fmt.Println("\nExpected shape (paper): smaller B ⇒ longer experiment, lower final score.")
}
