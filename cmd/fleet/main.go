// Command fleet runs N independent color-matching campaigns concurrently
// across a pool of M simulated workcells and prints a JSON summary: campaign
// outcomes, per-workcell utilization, fleet makespan in virtual workcell
// time, and the speedup over a sequential single-workcell baseline.
//
//	fleet -campaigns 8 -workcells 4
//	fleet -campaigns 8 -workcells 2 -lanes 2
//	fleet -campaigns 8 -workcells 4 -solver bayesian -batch 8 -samples 64
//	fleet -campaigns 4 -workcells 2 -faults 0.05 -publish
//	fleet -campaigns 4 -workcells 2 -portal http://localhost:2100
//	fleet -campaigns 4 -remote http://a:2000,http://b:2000
//	fleet -campaigns 8 -workcells 4 -lanes 2 -bench-out BENCH_fleet.json
//
// With -lanes K each local workcell runs K campaigns concurrently: the cell
// is built with K liquid handlers, each campaign owns one and keeps its
// plate on that deck, and the shared plate crane, arm and camera are leased
// per command (wei.Reservations) so the campaigns pipeline through the cell
// without ever holding one instrument twice at the same virtual time. The
// JSON output gains per-module busy/queue-wait breakdowns.
//
// With -portal each campaign's records and the fleet summary are published
// to the given cmd/portal-style server: every campaign's records are
// flushed in one POST /ingest/batch round-trip at campaign end. Against a
// portal started with -data the campaign archive survives portal restarts.
//
// With -stream (requires -portal) the fleet additionally publishes every
// step event live as it happens — command_sent, step_end, gate_wait,
// campaign lifecycle — batched through a background publisher into the
// portal's POST /events stream, where watchers (cmd/portalwatch, the index
// page's live table, GET /watch) follow it in real time:
//
//	fleet -campaigns 8 -workcells 4 -portal http://localhost:2100 -stream
//
// # Elastic pools
//
// With -remote the pool is the listed cmd/workcell-style HTTP servers — one
// workcell per URL — managed by the fleet registry: each campaign starts
// with a server-side session reset (fresh plate stock), admission is
// health-gated, a cell that dies mid-campaign is retired with its campaign
// requeued (uncharged), and a health prober keeps checking the corpse so a
// restarted cell is re-admitted and resumes taking campaigns.
//
//	fleet -campaigns 100 -remote http://a:2000 -probe-interval 500ms
//
// With -join-listen the fleet also serves its control plane, so workcells
// started with -announce join (and leave) the pool at runtime without being
// listed up front; -join-grace bounds how long an empty pool waits for its
// first member:
//
//	fleet -campaigns 100 -join-listen :2200 -join-grace 30s
//
// With -churn-cells N the pool is N in-process churnable workcell servers
// and -churn applies a kill/restart schedule against them — the
// churning-fleet benchmark:
//
//	fleet -campaigns 100 -churn-cells 4 -act-delay 2ms \
//	    -churn "0@1s+2s,2@3s+2s" -bench-out BENCH_fleet.json
//
// All timing is measured on the workcells' clocks (virtual for the local
// pool — robot wall-clock, the quantity the paper benchmarks — and the wall
// clock for remote cells), so the reported speedup reflects fleet
// scheduling, not host CPU count.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"colormatch/internal/color"
	"colormatch/internal/core"
	"colormatch/internal/fleet"
	"colormatch/internal/portal"
	"colormatch/internal/sim"
)

func main() {
	var (
		nCampaigns = flag.Int("campaigns", 8, "number of independent campaigns N")
		nWorkcells = flag.Int("workcells", 2, "size of the simulated workcell pool M")
		lanes      = flag.Int("lanes", 1, "concurrent campaigns per workcell K; cells get K liquid handlers and pipeline campaigns under module leases (local pool only)")
		benchOut   = flag.String("bench-out", "", "write the run's makespan/speedup/utilization benchmark JSON to this file (merged per scenario)")
		benchScen  = flag.String("bench-scenario", "", "scenario key for -bench-out (default lanes, or churn with -churn-cells)")
		solverName = flag.String("solver", "genetic", "solver: genetic|genetic-grid|bayesian|random|grid")
		batch      = flag.Int("batch", 4, "proposals requested from each solver at once (batch size k)")
		samples    = flag.Int("samples", 32, "sample budget per campaign")
		seed       = flag.Int64("seed", 1, "base seed for workcells and campaigns")
		targetHex  = flag.String("target", "787878", "target color as RRGGBB hex")
		faultRate  = flag.Float64("faults", 0, "per-command receive-fault probability on every workcell (local pool only)")
		publish    = flag.Bool("publish", false, "publish campaign records and a fleet summary to an in-memory portal")
		portalURL  = flag.String("portal", "", "publish campaign records and the fleet summary to this cmd/portal base URL (batch-flushed per campaign; overrides -publish)")
		stream     = flag.Bool("stream", false, "also stream step events live to the -portal server (POST /events) as campaigns run")
		compact    = flag.Bool("compact", false, "emit compact JSON instead of indented")
		remote     = flag.String("remote", "", "comma-separated workcell server base URLs; one remote cell per URL (overrides -workcells; -seed still seeds campaign solvers)")
		joinListen = flag.String("join-listen", "", "serve the fleet control plane (POST /join, POST /leave, GET /members) on this address so workcells can join at runtime")
		joinGrace  = flag.Duration("join-grace", 15*time.Second, "how long a pool with no live cell waits for one to (re)join before failing queued campaigns (elastic pools)")
		probeEvery = flag.Duration("probe-interval", time.Second, "base health-probe interval for suspect/down cells (elastic pools)")
		maxDown    = flag.Duration("max-downtime", 10*time.Minute, "give up on a cell that has been down this long (elastic pools)")
		churnCells = flag.Int("churn-cells", 0, "run the campaigns against N in-process churnable workcell servers (the churning-fleet benchmark pool)")
		churnSpec  = flag.String("churn", "", `kill/restart schedule "cell@killAt+downtime,..." for the -churn-cells pool (omit +downtime to kill for good)`)
		actDelay   = flag.Duration("act-delay", 0, "real-time delay per action command on -churn-cells servers, so scheduled kills land mid-campaign")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	cfg := fleetConfig{
		lanes:      *lanes,
		faults:     *faultRate,
		remoteFlag: *remote,
		remote:     splitURLs(*remote),
		churnCells: *churnCells,
		churnSpec:  *churnSpec,
		joinListen: *joinListen,
		stream:     *stream,
		portalURL:  *portalURL,
	}
	if err := cfg.validate(); err != nil {
		fatal(err)
	}
	churnEvents, err := fleet.ParseChurn(*churnSpec)
	if err != nil {
		fatal(err)
	}
	target, err := color.ParseHex(*targetHex)
	if err != nil {
		fatal(err)
	}

	opts := fleet.Options{
		Workcells:    *nWorkcells,
		LanesPerCell: *lanes,
		Batch:        *batch,
		Seed:         *seed,
		Publish:      *publish,
		Faults:       sim.FaultPlan{PReceive: *faultRate},
	}
	if *portalURL != "" {
		opts.Portal = portal.NewClient(*portalURL)
	}
	var pub *portal.EventPublisher
	if *stream {
		pub = portal.NewEventPublisher(portal.NewClient(*portalURL), portal.PublisherOptions{})
		opts.EventSink = pub
	}

	// Elastic pools run off a registry: remote URLs and churn cells are
	// health-probed members, and -join-listen admits announcers at runtime.
	var pool *fleet.ChurnPool
	if cfg.elastic() {
		reg := fleet.NewRegistry(fleet.RegistryOptions{
			ProbeInterval: *probeEvery,
			MaxDowntime:   *maxDown,
			JoinGrace:     *joinGrace,
			Seed:          *seed,
		})
		defer reg.Close()
		ropts := fleet.RemoteOptions{}
		if cfg.churnCells > 0 {
			pool, err = fleet.NewChurnPool(fleet.ChurnPoolOptions{
				Cells:    cfg.churnCells,
				Seed:     *seed,
				ActDelay: *actDelay,
			})
			if err != nil {
				fatal(err)
			}
			defer pool.Close()
			if err := pool.Register(reg, ropts); err != nil {
				fatal(err)
			}
		}
		for _, u := range cfg.remote {
			if _, err := reg.AddRemote("", u, ropts); err != nil {
				fatal(err)
			}
		}
		if cfg.joinListen != "" {
			srv := &http.Server{
				Addr:              cfg.joinListen,
				Handler:           reg.JoinHandler(ropts),
				ReadHeaderTimeout: 5 * time.Second,
			}
			go func() {
				if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
					fmt.Fprintln(os.Stderr, "fleet: control listener:", err)
				}
			}()
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "fleet: control plane on %s\n", cfg.joinListen)
		}
		opts.Registry = reg
	}

	campaigns := buildCampaigns(*nCampaigns, *solverName, target, *samples)
	if pool != nil && len(churnEvents) > 0 {
		stop := pool.Schedule(churnEvents)
		defer stop()
	}
	// Host wall-clock cost of the run — the price of every CI invocation,
	// as opposed to the virtual workcell time the summary reports. Measured
	// here rather than in internal/fleet, which is a virtual-time package
	// (archlint's wallclock check keeps time.Now out of it).
	wallStart := time.Now()
	res, err := fleet.Run(context.Background(), campaigns, opts)
	wallSeconds := time.Since(wallStart).Seconds()
	if pub != nil {
		// Final drain before the summary (and before a fatal exit): the
		// run's event tail should reach the portal even when the run failed.
		if cerr := pub.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "fleet: event stream:", cerr)
		}
		if n := pub.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "fleet: event stream dropped %d event(s)\n", n)
		}
	}
	if err != nil {
		fatal(err)
	}

	workcells := opts.Workcells
	if cfg.elastic() {
		workcells = len(res.Workcells)
	}
	s := summarize(res, workcells)
	enc := json.NewEncoder(os.Stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(s); err != nil {
		fatal(err)
	}
	if *benchOut != "" {
		scenario := *benchScen
		if scenario == "" {
			scenario = "lanes"
			if cfg.churnCells > 0 {
				scenario = "churn"
			}
		}
		if err := writeBench(*benchOut, scenario, buildBench(s, len(churnEvents), wallSeconds)); err != nil {
			fatal(err)
		}
	}
	if res.Failed > 0 {
		stopProfiles()
		os.Exit(1)
	}
}

// startProfiles enables CPU and/or heap profiling per the -cpuprofile and
// -memprofile flags. The returned stop function is idempotent, so it can run
// both deferred and explicitly before os.Exit paths (which skip defers).
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fleet: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fleet: memprofile:", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fleet: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "fleet: memprofile:", err)
			}
		}
	}, nil
}

// fleetConfig is the subset of flag state with cross-flag constraints,
// factored out so the fail-fast rules are testable.
type fleetConfig struct {
	lanes      int
	faults     float64
	remoteFlag string   // raw -remote value
	remote     []string // parsed URLs
	churnCells int
	churnSpec  string
	joinListen string
	stream     bool
	portalURL  string
}

// elastic reports whether the run is registry-managed (remote, churn, or
// runtime-join pools) rather than a fixed local simulated pool.
func (c fleetConfig) elastic() bool {
	return len(c.remote) > 0 || c.churnCells > 0 || c.joinListen != ""
}

// validate enforces the cross-flag rules and fails fast with a clear error
// instead of silently ignoring a flag that has no effect.
func (c fleetConfig) validate() error {
	if c.lanes < 1 {
		return fmt.Errorf("-lanes must be >= 1, got %d", c.lanes)
	}
	if c.remoteFlag != "" && len(c.remote) == 0 {
		return fmt.Errorf("-remote given but no URLs parsed from %q", c.remoteFlag)
	}
	if c.churnCells < 0 {
		return fmt.Errorf("-churn-cells must be >= 0, got %d", c.churnCells)
	}
	if c.churnCells > 0 && len(c.remote) > 0 {
		return fmt.Errorf("-churn-cells and -remote both name a pool; choose one")
	}
	if c.churnSpec != "" && c.churnCells == 0 {
		return fmt.Errorf("-churn needs a -churn-cells pool to act on")
	}
	if c.stream && c.portalURL == "" {
		return fmt.Errorf("-stream publishes to the -portal server; set -portal")
	}
	if c.elastic() {
		// Fault injection provisions the local pool's engines; an elastic
		// pool's faults are whatever its servers experience for real.
		if c.faults != 0 {
			return fmt.Errorf("-faults is a local-pool option and has no effect with %s", c.elasticFlag())
		}
		// Lanes provision extra liquid handlers on local simulated cells; a
		// remote cell's hardware is whatever its server has.
		if c.lanes > 1 {
			return fmt.Errorf("-lanes is a local-pool option and has no effect with %s", c.elasticFlag())
		}
	}
	return nil
}

// elasticFlag names whichever flag made the run elastic, for error text.
func (c fleetConfig) elasticFlag() string {
	switch {
	case len(c.remote) > 0:
		return "-remote"
	case c.churnCells > 0:
		return "-churn-cells"
	default:
		return "-join-listen"
	}
}

// benchOutput is the perf-trajectory record written by -bench-out: the
// numbers that should only get better PR over PR for a fixed workload.
type benchOutput struct {
	Campaigns          int       `json:"campaigns"`
	Workcells          int       `json:"workcells"`
	LanesPerCell       int       `json:"lanes_per_cell"`
	Completed          int       `json:"completed"`
	Lost               int       `json:"lost"`
	Readmissions       int       `json:"readmissions"`
	ChurnEvents        int       `json:"churn_events,omitempty"`
	MakespanSeconds    float64   `json:"makespan_seconds"`
	SequentialSeconds  float64   `json:"sequential_seconds"`
	Speedup            float64   `json:"speedup_vs_sequential"`
	CampaignsPerHour   float64   `json:"campaigns_per_hour"`
	QueueWaitSeconds   float64   `json:"queue_wait_seconds"`
	MeanUtilization    float64   `json:"mean_utilization"`
	PerCellUtilization []float64 `json:"per_cell_utilization"`
	// WallSeconds is host wall-clock time for the whole run — the real cost
	// of a CI invocation, unlike the virtual-time makespan above — and
	// CampaignsPerWallSecond the corresponding throughput. CI floor-asserts
	// the latter so hot-loop regressions are visible PR over PR.
	WallSeconds            float64 `json:"wall_seconds"`
	CampaignsPerWallSecond float64 `json:"campaigns_per_wall_second"`
}

// benchFile is the on-disk -bench-out shape: one entry per scenario, so the
// lanes workload and the churning-fleet workload live side by side.
type benchFile struct {
	Scenarios map[string]benchOutput `json:"scenarios"`
}

// buildBench extracts the benchmark slice of a run summary. Lost counts
// campaigns the scheduler never accounted for — it must be zero; a non-zero
// value means the fleet dropped work on the floor.
func buildBench(s summary, churnEvents int, wallSeconds float64) benchOutput {
	b := benchOutput{
		Campaigns:         s.Campaigns,
		Workcells:         s.Workcells,
		LanesPerCell:      s.LanesPerCell,
		Completed:         s.Completed,
		Lost:              s.Campaigns - s.Completed - s.Failed - s.Canceled,
		Readmissions:      s.Readmissions,
		ChurnEvents:       churnEvents,
		MakespanSeconds:   s.MakespanSeconds,
		SequentialSeconds: s.SequentialSeconds,
		Speedup:           s.Speedup,
		CampaignsPerHour:  s.CampaignsPerHour,
		QueueWaitSeconds:  s.QueueWaitSeconds,
		WallSeconds:       wallSeconds,
	}
	if wallSeconds > 0 {
		b.CampaignsPerWallSecond = float64(s.Completed) / wallSeconds
	}
	for _, wc := range s.PerWorkcell {
		b.PerCellUtilization = append(b.PerCellUtilization, wc.Utilization)
		b.MeanUtilization += wc.Utilization
	}
	if len(s.PerWorkcell) > 0 {
		b.MeanUtilization /= float64(len(s.PerWorkcell))
	}
	return b
}

// writeBench merges one scenario's benchmark into the file at path,
// preserving the other scenarios already recorded there. A pre-scenario
// file (one flat benchmark object) migrates to scenarios["lanes"].
func writeBench(path, scenario string, b benchOutput) error {
	f := benchFile{Scenarios: map[string]benchOutput{}}
	if data, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(data)) > 0 {
		var existing benchFile
		if json.Unmarshal(data, &existing) == nil && existing.Scenarios != nil {
			f.Scenarios = existing.Scenarios
		} else {
			var legacy benchOutput
			if json.Unmarshal(data, &legacy) == nil && legacy.Campaigns > 0 {
				f.Scenarios["lanes"] = legacy
			}
		}
	}
	f.Scenarios[scenario] = b
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitURLs parses the -remote flag: comma-separated base URLs, empty
// entries dropped.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// buildCampaigns prepares n campaigns sharing a solver, target and budget.
func buildCampaigns(n int, solverName string, target color.RGB8, samples int) []fleet.Campaign {
	campaigns := make([]fleet.Campaign, n)
	for i := range campaigns {
		campaigns[i] = fleet.Campaign{
			Solver: solverName,
			Config: core.Config{Target: target, TotalSamples: samples},
		}
	}
	return campaigns
}

// summary is the CLI's JSON output shape; durations are reported in seconds
// of virtual workcell time.
type summary struct {
	Campaigns         int                      `json:"campaigns"`
	Workcells         int                      `json:"workcells"`
	LanesPerCell      int                      `json:"lanes_per_cell"`
	Completed         int                      `json:"completed"`
	Failed            int                      `json:"failed"`
	Canceled          int                      `json:"canceled"`
	Samples           int                      `json:"samples"`
	Faults            int                      `json:"faults"`
	Readmissions      int                      `json:"readmissions"`
	MakespanSeconds   float64                  `json:"makespan_seconds"`
	SequentialSeconds float64                  `json:"sequential_seconds"`
	Speedup           float64                  `json:"speedup_vs_sequential"`
	CampaignsPerHour  float64                  `json:"campaigns_per_hour"`
	QueueWaitSeconds  float64                  `json:"queue_wait_seconds"`
	PublishError      string                   `json:"summary_publish_error,omitempty"`
	PerModule         map[string]moduleSummary `json:"per_module,omitempty"`
	PerWorkcell       []workcellSummary        `json:"per_workcell"`
	PerCampaign       []campaignSummary        `json:"per_campaign"`
}

type moduleSummary struct {
	Commands         int     `json:"commands"`
	BusySeconds      float64 `json:"busy_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Utilization      float64 `json:"utilization"`
}

type workcellSummary struct {
	Index            int     `json:"index"`
	Name             string  `json:"name,omitempty"`
	Lanes            int     `json:"lanes"`
	Campaigns        int     `json:"campaigns"`
	BusySeconds      float64 `json:"busy_seconds"`
	WorkSeconds      float64 `json:"work_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Utilization      float64 `json:"utilization"`
	Faults           int     `json:"faults"`
	Admissions       int     `json:"admissions,omitempty"`
	Retired          bool    `json:"retired,omitempty"`
}

type campaignSummary struct {
	Name             string  `json:"name"`
	Status           string  `json:"status"`
	Workcell         int     `json:"workcell"`
	Lane             int     `json:"lane"`
	Attempts         int     `json:"attempts"`
	WallSeconds      float64 `json:"wall_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Samples          int     `json:"samples"`
	Best             float64 `json:"best_score"`
	Error            string  `json:"error,omitempty"`
	PublishError     string  `json:"publish_error,omitempty"`
}

// summarize converts a fleet result into the CLI output shape.
func summarize(res *fleet.Result, workcells int) summary {
	s := summary{
		Campaigns:         len(res.Campaigns),
		Workcells:         workcells,
		LanesPerCell:      res.Lanes,
		Completed:         res.Completed,
		Failed:            res.Failed,
		Canceled:          res.Canceled,
		Samples:           res.Samples,
		Faults:            res.Faults,
		Readmissions:      res.Readmissions,
		MakespanSeconds:   res.Makespan.Seconds(),
		SequentialSeconds: res.SequentialWall.Seconds(),
		Speedup:           res.Speedup,
		CampaignsPerHour:  res.Throughput,
		QueueWaitSeconds:  res.QueueWait.Seconds(),
	}
	if res.PublishErr != nil {
		s.PublishError = res.PublishErr.Error()
	}
	for name, u := range res.Metrics.Modules {
		if s.PerModule == nil {
			s.PerModule = map[string]moduleSummary{}
		}
		s.PerModule[name] = moduleSummary{
			Commands:         u.Commands,
			BusySeconds:      u.Busy.Seconds(),
			QueueWaitSeconds: u.QueueWait.Seconds(),
			Utilization:      u.Utilization,
		}
	}
	for _, wc := range res.Workcells {
		s.PerWorkcell = append(s.PerWorkcell, workcellSummary{
			Index:            wc.Index,
			Name:             wc.Name,
			Lanes:            wc.Lanes,
			Campaigns:        wc.Campaigns,
			BusySeconds:      wc.Busy.Seconds(),
			WorkSeconds:      wc.Work.Seconds(),
			QueueWaitSeconds: wc.QueueWait.Seconds(),
			Utilization:      wc.Utilization,
			Faults:           wc.Faults,
			Admissions:       wc.Admissions,
			Retired:          wc.Retired,
		})
	}
	for _, cr := range res.Campaigns {
		cs := campaignSummary{
			Name:             cr.Campaign.Name,
			Status:           string(cr.Status),
			Workcell:         cr.Workcell,
			Lane:             cr.Lane,
			Attempts:         cr.Attempts,
			WallSeconds:      cr.Wall.Seconds(),
			QueueWaitSeconds: cr.QueueWait.Seconds(),
			Samples:          cr.Samples,
			Best:             cr.Best,
		}
		if cr.Err != nil {
			cs.Error = cr.Err.Error()
		}
		if cr.PublishErr != nil {
			cs.PublishError = cr.PublishErr.Error()
		}
		s.PerCampaign = append(s.PerCampaign, cs)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
