// Command fleet runs N independent color-matching campaigns concurrently
// across a pool of M simulated workcells and prints a JSON summary: campaign
// outcomes, per-workcell utilization, fleet makespan in virtual workcell
// time, and the speedup over a sequential single-workcell baseline.
//
//	fleet -campaigns 8 -workcells 4
//	fleet -campaigns 8 -workcells 4 -solver bayesian -batch 8 -samples 64
//	fleet -campaigns 4 -workcells 2 -faults 0.05 -publish
//	fleet -campaigns 4 -remote http://a:2000,http://b:2000
//
// With -remote the pool is the listed cmd/workcell-style HTTP servers — one
// workcell per URL — instead of in-process simulated cells: each campaign
// starts with a server-side session reset (fresh plate stock), admission is
// health-gated, and a cell that dies mid-campaign is retired with its
// campaign rescheduled onto a healthy one.
//
// All timing is measured on the workcells' clocks (virtual for the local
// pool — robot wall-clock, the quantity the paper benchmarks — and the wall
// clock for remote cells), so the reported speedup reflects fleet
// scheduling, not host CPU count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"colormatch/internal/color"
	"colormatch/internal/core"
	"colormatch/internal/fleet"
	"colormatch/internal/sim"
)

func main() {
	var (
		nCampaigns = flag.Int("campaigns", 8, "number of independent campaigns N")
		nWorkcells = flag.Int("workcells", 2, "size of the simulated workcell pool M")
		solverName = flag.String("solver", "genetic", "solver: genetic|genetic-grid|bayesian|random|grid")
		batch      = flag.Int("batch", 4, "proposals requested from each solver at once (batch size k)")
		samples    = flag.Int("samples", 32, "sample budget per campaign")
		seed       = flag.Int64("seed", 1, "base seed for workcells and campaigns")
		targetHex  = flag.String("target", "787878", "target color as RRGGBB hex")
		faultRate  = flag.Float64("faults", 0, "per-command receive-fault probability on every workcell")
		publish    = flag.Bool("publish", false, "publish campaign records and a fleet summary to an in-memory portal")
		compact    = flag.Bool("compact", false, "emit compact JSON instead of indented")
		remote     = flag.String("remote", "", "comma-separated workcell server base URLs; one remote cell per URL (overrides -workcells; -faults is local-pool-only, -seed still seeds campaign solvers)")
	)
	flag.Parse()

	target, err := color.ParseHex(*targetHex)
	if err != nil {
		fatal(err)
	}
	opts := fleet.Options{
		Workcells: *nWorkcells,
		Batch:     *batch,
		Seed:      *seed,
		Publish:   *publish,
		Faults:    sim.FaultPlan{PReceive: *faultRate},
	}
	if *remote != "" {
		urls := splitURLs(*remote)
		if len(urls) == 0 {
			fatal(fmt.Errorf("-remote given but no URLs parsed from %q", *remote))
		}
		if *faultRate != 0 {
			// Fault injection provisions the local pool's engines; a remote
			// cell's faults are whatever its server experiences for real.
			fatal(fmt.Errorf("-faults is a local-pool option and has no effect with -remote"))
		}
		opts.Provider = fleet.NewRemoteProvider(urls, fleet.RemoteOptions{})
		opts.Workcells = len(urls)
	}
	campaigns := buildCampaigns(*nCampaigns, *solverName, target, *samples)
	res, err := fleet.Run(context.Background(), campaigns, opts)
	if err != nil {
		fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(summarize(res, opts.Workcells)); err != nil {
		fatal(err)
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}

// splitURLs parses the -remote flag: comma-separated base URLs, empty
// entries dropped.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// buildCampaigns prepares n campaigns sharing a solver, target and budget.
func buildCampaigns(n int, solverName string, target color.RGB8, samples int) []fleet.Campaign {
	campaigns := make([]fleet.Campaign, n)
	for i := range campaigns {
		campaigns[i] = fleet.Campaign{
			Solver: solverName,
			Config: core.Config{Target: target, TotalSamples: samples},
		}
	}
	return campaigns
}

// summary is the CLI's JSON output shape; durations are reported in seconds
// of virtual workcell time.
type summary struct {
	Campaigns         int               `json:"campaigns"`
	Workcells         int               `json:"workcells"`
	Completed         int               `json:"completed"`
	Failed            int               `json:"failed"`
	Canceled          int               `json:"canceled"`
	Samples           int               `json:"samples"`
	Faults            int               `json:"faults"`
	MakespanSeconds   float64           `json:"makespan_seconds"`
	SequentialSeconds float64           `json:"sequential_seconds"`
	Speedup           float64           `json:"speedup_vs_sequential"`
	CampaignsPerHour  float64           `json:"campaigns_per_hour"`
	PerWorkcell       []workcellSummary `json:"per_workcell"`
	PerCampaign       []campaignSummary `json:"per_campaign"`
}

type workcellSummary struct {
	Index       int     `json:"index"`
	Campaigns   int     `json:"campaigns"`
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
	Faults      int     `json:"faults"`
	Retired     bool    `json:"retired,omitempty"`
}

type campaignSummary struct {
	Name        string  `json:"name"`
	Status      string  `json:"status"`
	Workcell    int     `json:"workcell"`
	Attempts    int     `json:"attempts"`
	WallSeconds float64 `json:"wall_seconds"`
	Samples     int     `json:"samples"`
	Best        float64 `json:"best_score"`
	Error       string  `json:"error,omitempty"`
}

// summarize converts a fleet result into the CLI output shape.
func summarize(res *fleet.Result, workcells int) summary {
	s := summary{
		Campaigns:         len(res.Campaigns),
		Workcells:         workcells,
		Completed:         res.Completed,
		Failed:            res.Failed,
		Canceled:          res.Canceled,
		Samples:           res.Samples,
		Faults:            res.Faults,
		MakespanSeconds:   res.Makespan.Seconds(),
		SequentialSeconds: res.SequentialWall.Seconds(),
		Speedup:           res.Speedup,
		CampaignsPerHour:  res.Throughput,
	}
	for _, wc := range res.Workcells {
		s.PerWorkcell = append(s.PerWorkcell, workcellSummary{
			Index:       wc.Index,
			Campaigns:   wc.Campaigns,
			BusySeconds: wc.Busy.Seconds(),
			Utilization: wc.Utilization,
			Faults:      wc.Faults,
			Retired:     wc.Retired,
		})
	}
	for _, cr := range res.Campaigns {
		cs := campaignSummary{
			Name:        cr.Campaign.Name,
			Status:      string(cr.Status),
			Workcell:    cr.Workcell,
			Attempts:    cr.Attempts,
			WallSeconds: cr.Wall.Seconds(),
			Samples:     cr.Samples,
			Best:        cr.Best,
		}
		if cr.Err != nil {
			cs.Error = cr.Err.Error()
		}
		s.PerCampaign = append(s.PerCampaign, cs)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
