// Command fleet runs N independent color-matching campaigns concurrently
// across a pool of M simulated workcells and prints a JSON summary: campaign
// outcomes, per-workcell utilization, fleet makespan in virtual workcell
// time, and the speedup over a sequential single-workcell baseline.
//
//	fleet -campaigns 8 -workcells 4
//	fleet -campaigns 8 -workcells 2 -lanes 2
//	fleet -campaigns 8 -workcells 4 -solver bayesian -batch 8 -samples 64
//	fleet -campaigns 4 -workcells 2 -faults 0.05 -publish
//	fleet -campaigns 4 -workcells 2 -portal http://localhost:2100
//	fleet -campaigns 4 -remote http://a:2000,http://b:2000
//	fleet -campaigns 8 -workcells 4 -lanes 2 -bench-out BENCH_fleet.json
//
// With -lanes K each local workcell runs K campaigns concurrently: the cell
// is built with K liquid handlers, each campaign owns one and keeps its
// plate on that deck, and the shared plate crane, arm and camera are leased
// per command (wei.Reservations) so the campaigns pipeline through the cell
// without ever holding one instrument twice at the same virtual time. The
// JSON output gains per-module busy/queue-wait breakdowns.
//
// With -portal each campaign's records and the fleet summary are published
// to the given cmd/portal-style server: every campaign's records are
// flushed in one POST /ingest/batch round-trip at campaign end. Against a
// portal started with -data the campaign archive survives portal restarts.
//
// With -remote the pool is the listed cmd/workcell-style HTTP servers — one
// workcell per URL — instead of in-process simulated cells: each campaign
// starts with a server-side session reset (fresh plate stock), admission is
// health-gated, and a cell that dies mid-campaign is retired with its
// campaign rescheduled onto a healthy one.
//
// All timing is measured on the workcells' clocks (virtual for the local
// pool — robot wall-clock, the quantity the paper benchmarks — and the wall
// clock for remote cells), so the reported speedup reflects fleet
// scheduling, not host CPU count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"colormatch/internal/color"
	"colormatch/internal/core"
	"colormatch/internal/fleet"
	"colormatch/internal/portal"
	"colormatch/internal/sim"
)

func main() {
	var (
		nCampaigns = flag.Int("campaigns", 8, "number of independent campaigns N")
		nWorkcells = flag.Int("workcells", 2, "size of the simulated workcell pool M")
		lanes      = flag.Int("lanes", 1, "concurrent campaigns per workcell K; cells get K liquid handlers and pipeline campaigns under module leases (local pool only)")
		benchOut   = flag.String("bench-out", "", "write the run's makespan/speedup/utilization benchmark JSON to this file")
		solverName = flag.String("solver", "genetic", "solver: genetic|genetic-grid|bayesian|random|grid")
		batch      = flag.Int("batch", 4, "proposals requested from each solver at once (batch size k)")
		samples    = flag.Int("samples", 32, "sample budget per campaign")
		seed       = flag.Int64("seed", 1, "base seed for workcells and campaigns")
		targetHex  = flag.String("target", "787878", "target color as RRGGBB hex")
		faultRate  = flag.Float64("faults", 0, "per-command receive-fault probability on every workcell")
		publish    = flag.Bool("publish", false, "publish campaign records and a fleet summary to an in-memory portal")
		portalURL  = flag.String("portal", "", "publish campaign records and the fleet summary to this cmd/portal base URL (batch-flushed per campaign; overrides -publish)")
		compact    = flag.Bool("compact", false, "emit compact JSON instead of indented")
		remote     = flag.String("remote", "", "comma-separated workcell server base URLs; one remote cell per URL (overrides -workcells; -faults is local-pool-only, -seed still seeds campaign solvers)")
	)
	flag.Parse()

	target, err := color.ParseHex(*targetHex)
	if err != nil {
		fatal(err)
	}
	opts := fleet.Options{
		Workcells:    *nWorkcells,
		LanesPerCell: *lanes,
		Batch:        *batch,
		Seed:         *seed,
		Publish:      *publish,
		Faults:       sim.FaultPlan{PReceive: *faultRate},
	}
	if *portalURL != "" {
		opts.Portal = portal.NewClient(*portalURL)
	}
	if *lanes < 1 {
		fatal(fmt.Errorf("-lanes must be >= 1, got %d", *lanes))
	}
	if *remote != "" {
		if *lanes > 1 {
			// Lanes provision extra liquid handlers on local simulated
			// cells; a remote cell's hardware is whatever its server has.
			fatal(fmt.Errorf("-lanes is a local-pool option and has no effect with -remote"))
		}
		urls := splitURLs(*remote)
		if len(urls) == 0 {
			fatal(fmt.Errorf("-remote given but no URLs parsed from %q", *remote))
		}
		if *faultRate != 0 {
			// Fault injection provisions the local pool's engines; a remote
			// cell's faults are whatever its server experiences for real.
			fatal(fmt.Errorf("-faults is a local-pool option and has no effect with -remote"))
		}
		opts.Provider = fleet.NewRemoteProvider(urls, fleet.RemoteOptions{})
		opts.Workcells = len(urls)
	}
	campaigns := buildCampaigns(*nCampaigns, *solverName, target, *samples)
	res, err := fleet.Run(context.Background(), campaigns, opts)
	if err != nil {
		fatal(err)
	}

	s := summarize(res, opts.Workcells)
	enc := json.NewEncoder(os.Stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(s); err != nil {
		fatal(err)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, s); err != nil {
			fatal(err)
		}
	}
	if res.Failed > 0 {
		os.Exit(1)
	}
}

// benchOutput is the perf-trajectory record written by -bench-out: the
// numbers that should only get better PR over PR for a fixed workload.
type benchOutput struct {
	Campaigns          int       `json:"campaigns"`
	Workcells          int       `json:"workcells"`
	LanesPerCell       int       `json:"lanes_per_cell"`
	Completed          int       `json:"completed"`
	MakespanSeconds    float64   `json:"makespan_seconds"`
	SequentialSeconds  float64   `json:"sequential_seconds"`
	Speedup            float64   `json:"speedup_vs_sequential"`
	CampaignsPerHour   float64   `json:"campaigns_per_hour"`
	QueueWaitSeconds   float64   `json:"queue_wait_seconds"`
	MeanUtilization    float64   `json:"mean_utilization"`
	PerCellUtilization []float64 `json:"per_cell_utilization"`
}

// writeBench saves the benchmark slice of a run summary to path.
func writeBench(path string, s summary) error {
	b := benchOutput{
		Campaigns:         s.Campaigns,
		Workcells:         s.Workcells,
		LanesPerCell:      s.LanesPerCell,
		Completed:         s.Completed,
		MakespanSeconds:   s.MakespanSeconds,
		SequentialSeconds: s.SequentialSeconds,
		Speedup:           s.Speedup,
		CampaignsPerHour:  s.CampaignsPerHour,
		QueueWaitSeconds:  s.QueueWaitSeconds,
	}
	for _, wc := range s.PerWorkcell {
		b.PerCellUtilization = append(b.PerCellUtilization, wc.Utilization)
		b.MeanUtilization += wc.Utilization
	}
	if len(s.PerWorkcell) > 0 {
		b.MeanUtilization /= float64(len(s.PerWorkcell))
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitURLs parses the -remote flag: comma-separated base URLs, empty
// entries dropped.
func splitURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// buildCampaigns prepares n campaigns sharing a solver, target and budget.
func buildCampaigns(n int, solverName string, target color.RGB8, samples int) []fleet.Campaign {
	campaigns := make([]fleet.Campaign, n)
	for i := range campaigns {
		campaigns[i] = fleet.Campaign{
			Solver: solverName,
			Config: core.Config{Target: target, TotalSamples: samples},
		}
	}
	return campaigns
}

// summary is the CLI's JSON output shape; durations are reported in seconds
// of virtual workcell time.
type summary struct {
	Campaigns         int                      `json:"campaigns"`
	Workcells         int                      `json:"workcells"`
	LanesPerCell      int                      `json:"lanes_per_cell"`
	Completed         int                      `json:"completed"`
	Failed            int                      `json:"failed"`
	Canceled          int                      `json:"canceled"`
	Samples           int                      `json:"samples"`
	Faults            int                      `json:"faults"`
	MakespanSeconds   float64                  `json:"makespan_seconds"`
	SequentialSeconds float64                  `json:"sequential_seconds"`
	Speedup           float64                  `json:"speedup_vs_sequential"`
	CampaignsPerHour  float64                  `json:"campaigns_per_hour"`
	QueueWaitSeconds  float64                  `json:"queue_wait_seconds"`
	PublishError      string                   `json:"summary_publish_error,omitempty"`
	PerModule         map[string]moduleSummary `json:"per_module,omitempty"`
	PerWorkcell       []workcellSummary        `json:"per_workcell"`
	PerCampaign       []campaignSummary        `json:"per_campaign"`
}

type moduleSummary struct {
	Commands         int     `json:"commands"`
	BusySeconds      float64 `json:"busy_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Utilization      float64 `json:"utilization"`
}

type workcellSummary struct {
	Index            int     `json:"index"`
	Lanes            int     `json:"lanes"`
	Campaigns        int     `json:"campaigns"`
	BusySeconds      float64 `json:"busy_seconds"`
	WorkSeconds      float64 `json:"work_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Utilization      float64 `json:"utilization"`
	Faults           int     `json:"faults"`
	Retired          bool    `json:"retired,omitempty"`
}

type campaignSummary struct {
	Name             string  `json:"name"`
	Status           string  `json:"status"`
	Workcell         int     `json:"workcell"`
	Lane             int     `json:"lane"`
	Attempts         int     `json:"attempts"`
	WallSeconds      float64 `json:"wall_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	Samples          int     `json:"samples"`
	Best             float64 `json:"best_score"`
	Error            string  `json:"error,omitempty"`
	PublishError     string  `json:"publish_error,omitempty"`
}

// summarize converts a fleet result into the CLI output shape.
func summarize(res *fleet.Result, workcells int) summary {
	s := summary{
		Campaigns:         len(res.Campaigns),
		Workcells:         workcells,
		LanesPerCell:      res.Lanes,
		Completed:         res.Completed,
		Failed:            res.Failed,
		Canceled:          res.Canceled,
		Samples:           res.Samples,
		Faults:            res.Faults,
		MakespanSeconds:   res.Makespan.Seconds(),
		SequentialSeconds: res.SequentialWall.Seconds(),
		Speedup:           res.Speedup,
		CampaignsPerHour:  res.Throughput,
		QueueWaitSeconds:  res.QueueWait.Seconds(),
	}
	if res.PublishErr != nil {
		s.PublishError = res.PublishErr.Error()
	}
	for name, u := range res.Metrics.Modules {
		if s.PerModule == nil {
			s.PerModule = map[string]moduleSummary{}
		}
		s.PerModule[name] = moduleSummary{
			Commands:         u.Commands,
			BusySeconds:      u.Busy.Seconds(),
			QueueWaitSeconds: u.QueueWait.Seconds(),
			Utilization:      u.Utilization,
		}
	}
	for _, wc := range res.Workcells {
		s.PerWorkcell = append(s.PerWorkcell, workcellSummary{
			Index:            wc.Index,
			Lanes:            wc.Lanes,
			Campaigns:        wc.Campaigns,
			BusySeconds:      wc.Busy.Seconds(),
			WorkSeconds:      wc.Work.Seconds(),
			QueueWaitSeconds: wc.QueueWait.Seconds(),
			Utilization:      wc.Utilization,
			Faults:           wc.Faults,
			Retired:          wc.Retired,
		})
	}
	for _, cr := range res.Campaigns {
		cs := campaignSummary{
			Name:             cr.Campaign.Name,
			Status:           string(cr.Status),
			Workcell:         cr.Workcell,
			Lane:             cr.Lane,
			Attempts:         cr.Attempts,
			WallSeconds:      cr.Wall.Seconds(),
			QueueWaitSeconds: cr.QueueWait.Seconds(),
			Samples:          cr.Samples,
			Best:             cr.Best,
		}
		if cr.Err != nil {
			cs.Error = cr.Err.Error()
		}
		if cr.PublishErr != nil {
			cs.PublishError = cr.PublishErr.Error()
		}
		s.PerCampaign = append(s.PerCampaign, cs)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleet:", err)
	os.Exit(1)
}
