package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colormatch/internal/color"
	"colormatch/internal/fleet"
)

func TestSummarizeEndToEnd(t *testing.T) {
	target, _ := color.ParseHex("787878")
	campaigns := buildCampaigns(2, "random", target, 8)
	if len(campaigns) != 2 || campaigns[0].Solver != "random" {
		t.Fatalf("campaigns = %+v", campaigns)
	}
	res, err := fleet.Run(context.Background(), campaigns, fleet.Options{
		Workcells: 2, Batch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(res, 2)
	if s.Campaigns != 2 || s.Workcells != 2 || s.Completed != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MakespanSeconds <= 0 || s.Speedup <= 0 {
		t.Fatalf("timing missing: %+v", s)
	}
	if len(s.PerWorkcell) != 2 || len(s.PerCampaign) != 2 {
		t.Fatalf("breakdowns missing: %+v", s)
	}
	for _, c := range s.PerCampaign {
		if c.Status != string(fleet.StatusCompleted) || c.Samples != 8 {
			t.Fatalf("campaign summary = %+v", c)
		}
	}
}

func TestSplitURLs(t *testing.T) {
	urls := splitURLs(" http://a:2000, http://b:2000 ,,")
	if len(urls) != 2 || urls[0] != "http://a:2000" || urls[1] != "http://b:2000" {
		t.Fatalf("urls = %#v", urls)
	}
	if got := splitURLs(",,"); len(got) != 0 {
		t.Fatalf("empty parse = %#v", got)
	}
}

func TestSummarizeLanesAndBenchOut(t *testing.T) {
	target, _ := color.ParseHex("787878")
	res, err := fleet.Run(context.Background(), buildCampaigns(4, "random", target, 8), fleet.Options{
		Workcells: 1, LanesPerCell: 2, Batch: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(res, 1)
	if s.LanesPerCell != 2 {
		t.Fatalf("lanes_per_cell = %d", s.LanesPerCell)
	}
	if s.QueueWaitSeconds <= 0 {
		t.Fatalf("queue_wait_seconds = %v, want > 0 with 2 lanes on one cell", s.QueueWaitSeconds)
	}
	if len(s.PerModule) == 0 {
		t.Fatal("per_module breakdown missing")
	}
	if _, ok := s.PerModule["pf400"]; !ok {
		t.Fatalf("per_module lacks pf400: %v", s.PerModule)
	}
	if s.PerWorkcell[0].WorkSeconds <= s.PerWorkcell[0].BusySeconds {
		t.Fatalf("work %v <= busy %v: lanes did not overlap",
			s.PerWorkcell[0].WorkSeconds, s.PerWorkcell[0].BusySeconds)
	}

	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := writeBench(path, "lanes", buildBench(s, 0, 1.5)); err != nil {
		t.Fatal(err)
	}
	f := readBenchFile(t, path)
	b := f.Scenarios["lanes"]
	if b.LanesPerCell != 2 || b.Completed != 4 || b.MakespanSeconds <= 0 || b.Speedup <= 1 {
		t.Fatalf("bench output = %+v", b)
	}
	if b.WallSeconds != 1.5 || b.CampaignsPerWallSecond != float64(b.Completed)/1.5 {
		t.Fatalf("wall-clock fields = %v, %v", b.WallSeconds, b.CampaignsPerWallSecond)
	}
	if b.MeanUtilization <= 0 || len(b.PerCellUtilization) != 1 {
		t.Fatalf("utilization missing: %+v", b)
	}
	if b.Lost != 0 {
		t.Fatalf("lost = %d, want 0", b.Lost)
	}
}

// TestValidateFailFast pins the cross-flag rules: flags that would silently
// do nothing must be rejected up front with an error naming both sides.
func TestValidateFailFast(t *testing.T) {
	remote := []string{"http://a:2000"}
	cases := []struct {
		name string
		cfg  fleetConfig
		want string // substring of the error, "" for valid
	}{
		{"local defaults", fleetConfig{lanes: 1}, ""},
		{"local lanes", fleetConfig{lanes: 2}, ""},
		{"local faults", fleetConfig{lanes: 1, faults: 0.05}, ""},
		{"remote", fleetConfig{lanes: 1, remoteFlag: "http://a:2000", remote: remote}, ""},
		{"churn pool", fleetConfig{lanes: 1, churnCells: 4, churnSpec: "0@1s+2s"}, ""},
		{"join listen", fleetConfig{lanes: 1, joinListen: ":2200"}, ""},
		{"lanes zero", fleetConfig{lanes: 0}, "-lanes must be >= 1"},
		{"remote no urls", fleetConfig{lanes: 1, remoteFlag: " , "}, "no URLs parsed"},
		{"faults with remote", fleetConfig{lanes: 1, faults: 0.05, remoteFlag: "http://a:2000", remote: remote}, "-faults is a local-pool option"},
		{"lanes with remote", fleetConfig{lanes: 2, remoteFlag: "http://a:2000", remote: remote}, "-lanes is a local-pool option"},
		{"faults with churn", fleetConfig{lanes: 1, faults: 0.05, churnCells: 2}, "-faults is a local-pool option"},
		{"faults with join listen", fleetConfig{lanes: 1, faults: 0.05, joinListen: ":2200"}, "-faults is a local-pool option"},
		{"churn with remote", fleetConfig{lanes: 1, churnCells: 2, remoteFlag: "http://a:2000", remote: remote}, "choose one"},
		{"churn spec without pool", fleetConfig{lanes: 1, churnSpec: "0@1s"}, "-churn needs a -churn-cells pool"},
		{"negative churn cells", fleetConfig{lanes: 1, churnCells: -1}, "-churn-cells must be >= 0"},
		{"stream with portal", fleetConfig{lanes: 1, stream: true, portalURL: "http://p:2100"}, ""},
		{"stream without portal", fleetConfig{lanes: 1, stream: true}, "-portal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateFaultsWithRemoteErrorNamesBothFlags is the regression test for
// the original silent-ignore hazard: -faults alongside -remote must fail
// fast with an error naming both flags, not run a fault-free remote fleet.
func TestValidateFaultsWithRemoteErrorNamesBothFlags(t *testing.T) {
	cfg := fleetConfig{
		lanes:      1,
		faults:     0.1,
		remoteFlag: "http://a:2000",
		remote:     []string{"http://a:2000"},
	}
	err := cfg.validate()
	if err == nil {
		t.Fatal("-faults with -remote validated clean; want fail-fast error")
	}
	for _, flag := range []string{"-faults", "-remote"} {
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("error %q does not name %s", err, flag)
		}
	}
}

// TestWriteBenchScenarios covers the -bench-out merge behavior: scenarios
// accumulate in one file, rewriting a scenario replaces only that entry.
func TestWriteBenchScenarios(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if err := writeBench(path, "lanes", benchOutput{Campaigns: 8, Completed: 8}); err != nil {
		t.Fatal(err)
	}
	if err := writeBench(path, "churn", benchOutput{Campaigns: 100, Completed: 100, Readmissions: 3, ChurnEvents: 2}); err != nil {
		t.Fatal(err)
	}
	f := readBenchFile(t, path)
	if len(f.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2: %v", len(f.Scenarios), f.Scenarios)
	}
	if f.Scenarios["lanes"].Campaigns != 8 || f.Scenarios["churn"].Campaigns != 100 {
		t.Fatalf("scenario mixup: %+v", f.Scenarios)
	}
	if f.Scenarios["churn"].Readmissions != 3 {
		t.Fatalf("churn readmissions = %d, want 3", f.Scenarios["churn"].Readmissions)
	}

	// Rewriting one scenario must not clobber the other.
	if err := writeBench(path, "churn", benchOutput{Campaigns: 120, Completed: 120}); err != nil {
		t.Fatal(err)
	}
	f = readBenchFile(t, path)
	if f.Scenarios["churn"].Campaigns != 120 || f.Scenarios["lanes"].Campaigns != 8 {
		t.Fatalf("rewrite clobbered scenarios: %+v", f.Scenarios)
	}
}

// TestWriteBenchMigratesLegacyFlatFile covers upgrading a pre-scenario
// BENCH_fleet.json (one flat benchmark object) in place.
func TestWriteBenchMigratesLegacyFlatFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	legacy, err := json.Marshal(benchOutput{Campaigns: 8, Completed: 8, Speedup: 3.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeBench(path, "churn", benchOutput{Campaigns: 100, Completed: 100}); err != nil {
		t.Fatal(err)
	}
	f := readBenchFile(t, path)
	if got := f.Scenarios["lanes"]; got.Campaigns != 8 || got.Speedup != 3.5 {
		t.Fatalf("legacy entry not migrated to lanes: %+v", f.Scenarios)
	}
	if f.Scenarios["churn"].Campaigns != 100 {
		t.Fatalf("churn entry missing: %+v", f.Scenarios)
	}
}

func readBenchFile(t *testing.T, path string) benchFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil || f.Scenarios == nil {
		t.Fatalf("bench file is not scenario-shaped: %v\n%s", err, data)
	}
	return f
}
