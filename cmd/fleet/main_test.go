package main

import (
	"context"
	"testing"

	"colormatch/internal/color"
	"colormatch/internal/fleet"
)

func TestSummarizeEndToEnd(t *testing.T) {
	target, _ := color.ParseHex("787878")
	campaigns := buildCampaigns(2, "random", target, 8)
	if len(campaigns) != 2 || campaigns[0].Solver != "random" {
		t.Fatalf("campaigns = %+v", campaigns)
	}
	res, err := fleet.Run(context.Background(), campaigns, fleet.Options{
		Workcells: 2, Batch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(res, 2)
	if s.Campaigns != 2 || s.Workcells != 2 || s.Completed != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MakespanSeconds <= 0 || s.Speedup <= 0 {
		t.Fatalf("timing missing: %+v", s)
	}
	if len(s.PerWorkcell) != 2 || len(s.PerCampaign) != 2 {
		t.Fatalf("breakdowns missing: %+v", s)
	}
	for _, c := range s.PerCampaign {
		if c.Status != string(fleet.StatusCompleted) || c.Samples != 8 {
			t.Fatalf("campaign summary = %+v", c)
		}
	}
}

func TestSplitURLs(t *testing.T) {
	urls := splitURLs(" http://a:2000, http://b:2000 ,,")
	if len(urls) != 2 || urls[0] != "http://a:2000" || urls[1] != "http://b:2000" {
		t.Fatalf("urls = %#v", urls)
	}
	if got := splitURLs(",,"); len(got) != 0 {
		t.Fatalf("empty parse = %#v", got)
	}
}
