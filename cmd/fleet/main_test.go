package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"colormatch/internal/color"
	"colormatch/internal/fleet"
)

func TestSummarizeEndToEnd(t *testing.T) {
	target, _ := color.ParseHex("787878")
	campaigns := buildCampaigns(2, "random", target, 8)
	if len(campaigns) != 2 || campaigns[0].Solver != "random" {
		t.Fatalf("campaigns = %+v", campaigns)
	}
	res, err := fleet.Run(context.Background(), campaigns, fleet.Options{
		Workcells: 2, Batch: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(res, 2)
	if s.Campaigns != 2 || s.Workcells != 2 || s.Completed != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MakespanSeconds <= 0 || s.Speedup <= 0 {
		t.Fatalf("timing missing: %+v", s)
	}
	if len(s.PerWorkcell) != 2 || len(s.PerCampaign) != 2 {
		t.Fatalf("breakdowns missing: %+v", s)
	}
	for _, c := range s.PerCampaign {
		if c.Status != string(fleet.StatusCompleted) || c.Samples != 8 {
			t.Fatalf("campaign summary = %+v", c)
		}
	}
}

func TestSplitURLs(t *testing.T) {
	urls := splitURLs(" http://a:2000, http://b:2000 ,,")
	if len(urls) != 2 || urls[0] != "http://a:2000" || urls[1] != "http://b:2000" {
		t.Fatalf("urls = %#v", urls)
	}
	if got := splitURLs(",,"); len(got) != 0 {
		t.Fatalf("empty parse = %#v", got)
	}
}

func TestSummarizeLanesAndBenchOut(t *testing.T) {
	target, _ := color.ParseHex("787878")
	res, err := fleet.Run(context.Background(), buildCampaigns(4, "random", target, 8), fleet.Options{
		Workcells: 1, LanesPerCell: 2, Batch: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(res, 1)
	if s.LanesPerCell != 2 {
		t.Fatalf("lanes_per_cell = %d", s.LanesPerCell)
	}
	if s.QueueWaitSeconds <= 0 {
		t.Fatalf("queue_wait_seconds = %v, want > 0 with 2 lanes on one cell", s.QueueWaitSeconds)
	}
	if len(s.PerModule) == 0 {
		t.Fatal("per_module breakdown missing")
	}
	if _, ok := s.PerModule["pf400"]; !ok {
		t.Fatalf("per_module lacks pf400: %v", s.PerModule)
	}
	if s.PerWorkcell[0].WorkSeconds <= s.PerWorkcell[0].BusySeconds {
		t.Fatalf("work %v <= busy %v: lanes did not overlap",
			s.PerWorkcell[0].WorkSeconds, s.PerWorkcell[0].BusySeconds)
	}

	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	if err := writeBench(path, s); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b benchOutput
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.LanesPerCell != 2 || b.Completed != 4 || b.MakespanSeconds <= 0 || b.Speedup <= 1 {
		t.Fatalf("bench output = %+v", b)
	}
	if b.MeanUtilization <= 0 || len(b.PerCellUtilization) != 1 {
		t.Fatalf("utilization missing: %+v", b)
	}
}
