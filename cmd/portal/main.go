// Command portal serves the data portal (the reproduction of the ACDC
// portal in the paper's Figure 3): applications publish experiment records
// to it over HTTP, and users query summaries and run details back.
//
//	portal -listen :2100
//
// Endpoints: POST /ingest, GET /search, GET /records/<id>,
// GET /experiments, GET /experiments/<name>/summary, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"colormatch/internal/portal"
)

func main() {
	listen := flag.String("listen", ":2100", "HTTP listen address")
	flag.Parse()

	store := portal.NewStore()
	fmt.Printf("portal: listening on %s\n", *listen)
	if err := http.ListenAndServe(*listen, portal.Serve(store)); err != nil {
		fmt.Fprintln(os.Stderr, "portal:", err)
		os.Exit(1)
	}
}
