// Command portal serves the data portal (the reproduction of the ACDC
// portal in the paper's Figure 3): applications publish experiment records
// to it over HTTP, and users query summaries and run details back.
//
//	portal -listen :2100
//	portal -listen :2100 -data ./portal-data
//	portal -listen :2100 -data ./portal-data -compact-segments 4 -replay-workers 2
//
// Without -data the store is in-memory and dies with the process. With
// -data every accepted record is appended to a JSON segment log (with
// attachments in separate blob files) under the given directory and
// replayed on the next start, so the archive survives restarts; a record
// torn by a crash mid-append is dropped on replay. Replay decodes segments
// on all cores (-replay-workers caps it), and sealed segments are folded
// into a snapshot segment by background compaction once more than
// -compact-segments of them accumulate (0 disables compaction). See
// docs/PORTAL.md for the directory layout and the full endpoint reference.
//
// The portal also serves live event streaming: fleets POST step events to
// /events as campaigns run (cmd/fleet -stream) and watchers follow them on
// GET /watch (cmd/portalwatch, or the index page's live table). With -data
// the event stream is durable too (an events/ segment log under the data
// dir), so watch cursors survive a portal restart.
//
// Endpoints: POST /ingest, POST /ingest/batch, POST /events, GET /search
// (with cursor pagination), GET /records/<id>, GET /experiments,
// GET /experiments/<name>/summary, GET /watch (SSE or long-poll),
// GET /healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"colormatch/internal/portal"
)

func main() {
	listen := flag.String("listen", ":2100", "HTTP listen address")
	dataDir := flag.String("data", "", "durable data directory (segment log + blobs), replayed on startup; empty = in-memory only")
	compactSegs := flag.Int("compact-segments", 8, "background-compact the segment log once this many sealed segments accumulate; 0 disables")
	replayWorkers := flag.Int("replay-workers", 0, "decode workers for startup replay; 0 = all cores, 1 = sequential")
	watchBuffer := flag.Int("watch-buffer", 256, "per-subscriber event buffer; a watcher this far behind is evicted")
	flag.Parse()

	var store *portal.Store
	hubOpts := portal.HubOptions{SubscriberBuffer: *watchBuffer}
	if *dataDir != "" {
		var err error
		store, err = portal.OpenStoreWith(*dataDir, portal.Options{
			ReplayWorkers:       *replayWorkers,
			AutoCompactSegments: *compactSegs,
		})
		if err != nil {
			fatal(err)
		}
		hubOpts.Dir = filepath.Join(*dataDir, "events")
		fmt.Printf("portal: replayed %d record(s) from %s\n", store.Len(), *dataDir)
	} else {
		store = portal.NewStore()
	}
	hub, err := portal.OpenHub(hubOpts)
	if err != nil {
		fatal(err)
	}
	if hubOpts.Dir != "" {
		fmt.Printf("portal: event stream at seq %d\n", hub.LastSeq())
	}
	// Close on shutdown signals. (A deferred Close would never run:
	// ListenAndServe only returns on error and fatal os.Exits.) Every
	// batch is fsynced at append time, so nothing is lost even on a hard
	// kill; this just releases the log files cleanly and ends live watches.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if err := hub.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "portal:", err)
		}
		store.Close()
		os.Exit(0)
	}()
	fmt.Printf("portal: listening on %s\n", *listen)
	if err := http.ListenAndServe(*listen, portal.Serve(store, portal.WithHub(hub))); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "portal:", err)
	os.Exit(1)
}
