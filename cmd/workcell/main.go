// Command workcell serves the simulated RPL workcell's modules over HTTP,
// playing the role of the device computers in the physical deployment. A
// colorpicker application (or cmd/wfrun) on another process — or another
// machine — can then drive the instruments through the same wire protocol.
//
//	workcell -listen :2000 -realtime
//
// With -realtime the instruments take real wall-clock time (a plate
// transfer really takes ~42s); without it the virtual clock makes actions
// complete immediately while still reporting modeled durations, which is
// useful for protocol-level integration testing.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"colormatch/internal/core"
	"colormatch/internal/wei"
)

func main() {
	var (
		listen   = flag.String("listen", ":2000", "HTTP listen address")
		seed     = flag.Int64("seed", 1, "workcell simulation seed")
		realtime = flag.Bool("realtime", false, "run instruments on the wall clock")
		numOT2   = flag.Int("ot2s", 1, "number of liquid-handler modules")
		stock    = flag.Int("plates", 10, "plate stock in the storage towers")
	)
	flag.Parse()

	wc := core.NewSimWorkcell(core.WorkcellOptions{
		Seed:       *seed,
		RealTime:   *realtime,
		NumOT2:     *numOT2,
		PlateStock: *stock,
	})
	handler := wei.ServeModules(wc.Registry)
	fmt.Printf("workcell: serving modules %v on %s (realtime=%v)\n",
		wc.Registry.Names(), *listen, *realtime)
	if err := http.ListenAndServe(*listen, handler); err != nil {
		fmt.Fprintln(os.Stderr, "workcell:", err)
		os.Exit(1)
	}
}
