// Command workcell serves the simulated RPL workcell's modules over HTTP,
// playing the role of the device computers in the physical deployment. A
// colorpicker application (or cmd/wfrun, or a fleet scheduler via
// cmd/fleet -remote) on another process — or another machine — can then
// drive the instruments through the same wire protocol.
//
//	workcell -listen :2000 -realtime
//
// With -realtime the instruments take real wall-clock time (a plate
// transfer really takes ~42s); without it the virtual clock makes actions
// complete immediately while still reporting modeled durations, which is
// useful for protocol-level integration testing.
//
// Besides the per-module endpoints the server exposes the whole-cell
// control plane a fleet scheduler uses:
//
//	GET  /healthz  liveness, module set, capabilities, current session
//	POST /reset    start a new session: fresh plate stock and reservoirs,
//	               new server-side command log ({"campaign": "c01"} labels it)
//	GET  /session  the current session's command log
//
// A workcell can announce itself to an elastic fleet's control listener
// (cmd/fleet -join-listen) instead of being listed on the fleet's command
// line:
//
//	workcell -listen :2000 -name cell-a -announce http://fleethost:2200
//
// and for churn/fault-injection testing the whole server can be made to
// misbehave probabilistically:
//
//	workcell -listen :2000 -chaos 0.05
//
// which crashes, hangs, or slow-answers ~5% of requests (split evenly), the
// control plane included — what a flaky device computer looks like from the
// fleet side. -chaos-slow/-chaos-hang tune the delays, -chaos-seed makes
// the misbehavior stream reproducible.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colormatch/internal/core"
	"colormatch/internal/fleet"
	"colormatch/internal/wei"
)

func main() {
	var (
		listen    = flag.String("listen", ":2000", "HTTP listen address")
		seed      = flag.Int64("seed", 1, "workcell simulation seed")
		realtime  = flag.Bool("realtime", false, "run instruments on the wall clock")
		numOT2    = flag.Int("ot2s", 1, "number of liquid-handler modules")
		stock     = flag.Int("plates", 10, "plate stock in the storage towers")
		name      = flag.String("name", "", "cell name announced to the fleet (default: fleet-assigned)")
		announce  = flag.String("announce", "", "fleet control listener base URL to join (e.g. http://fleethost:2200)")
		advertise = flag.String("advertise", "", "own base URL the fleet should dial back (default http://127.0.0.1:<listen port>)")
		chaosP    = flag.Float64("chaos", 0, "probability a request misbehaves (split evenly across crash/hang/slow)")
		chaosSlow = flag.Duration("chaos-slow", 2*time.Second, "slow-answer delay under -chaos")
		chaosHang = flag.Duration("chaos-hang", 30*time.Second, "hang duration under -chaos")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos misbehavior stream seed")
	)
	flag.Parse()

	opts := core.WorkcellOptions{
		Seed:       *seed,
		RealTime:   *realtime,
		NumOT2:     *numOT2,
		PlateStock: *stock,
	}
	wc := core.NewSimWorkcell(opts)
	// Each /reset provisions a fresh workcell — full plate towers, filled
	// reservoirs, cleared device state — so every campaign starts from the
	// same stock the previous one did.
	ws := wei.NewWorkcellServer(wc.Registry, wei.ServerOptions{
		Reset: func() (*wei.Registry, error) {
			return core.NewSimWorkcell(opts).Registry, nil
		},
		Caps: wei.Capabilities{
			Lanes:    *numOT2,
			OT2s:     *numOT2,
			Realtime: *realtime,
			Camera:   true,
		},
	})

	handler := ws.Handler()
	if *chaosP > 0 {
		plan := wei.ChaosPlan{
			PCrash: *chaosP / 3, PHang: *chaosP / 3, PSlow: *chaosP / 3,
			SlowFor: *chaosSlow, HangFor: *chaosHang, Seed: *chaosSeed,
		}
		handler = wei.ChaosMiddleware(plan, handler)
		fmt.Printf("workcell: chaos enabled (p=%.3f: crash/hang/slow %.3f each)\n",
			*chaosP, *chaosP/3)
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM (mirroring cmd/portal): stop
	// accepting, let in-flight commands finish, and tell the fleet we are
	// leaving so it deregisters us instead of probing a corpse.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if *announce != "" && *name != "" {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := fleet.Leave(ctx, *announce, *name); err != nil {
				fmt.Fprintln(os.Stderr, "workcell: leave:", err)
			}
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
	}()

	if *announce != "" {
		self := *advertise
		if self == "" {
			self = selfURL(*listen)
		}
		// Join after a short delay so the listener below is accepting by the
		// time the fleet probes back. A join before the fleet is up is not
		// fatal: the fleet can also be pointed at this cell by URL.
		go func() {
			time.Sleep(200 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := fleet.Announce(ctx, *announce, *name, self); err != nil {
				fmt.Fprintln(os.Stderr, "workcell: announce:", err)
				return
			}
			fmt.Printf("workcell: announced %s to fleet at %s\n", self, *announce)
		}()
	}

	fmt.Printf("workcell: serving modules %v on %s (realtime=%v)\n",
		wc.Registry.Names(), *listen, *realtime)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "workcell:", err)
		os.Exit(1)
	}
}

// selfURL derives the URL a fleet on another host could dial back from the
// listen address; a bare ":2000" maps to loopback, which only works for
// same-host fleets — set -advertise for anything real.
func selfURL(listen string) string {
	if len(listen) > 0 && listen[0] == ':' {
		return "http://127.0.0.1" + listen
	}
	return "http://" + listen
}
