// Command workcell serves the simulated RPL workcell's modules over HTTP,
// playing the role of the device computers in the physical deployment. A
// colorpicker application (or cmd/wfrun, or a fleet scheduler via
// cmd/fleet -remote) on another process — or another machine — can then
// drive the instruments through the same wire protocol.
//
//	workcell -listen :2000 -realtime
//
// With -realtime the instruments take real wall-clock time (a plate
// transfer really takes ~42s); without it the virtual clock makes actions
// complete immediately while still reporting modeled durations, which is
// useful for protocol-level integration testing.
//
// Besides the per-module endpoints the server exposes the whole-cell
// control plane a fleet scheduler uses:
//
//	GET  /healthz  liveness, module set, current session
//	POST /reset    start a new session: fresh plate stock and reservoirs,
//	               new server-side command log ({"campaign": "c01"} labels it)
//	GET  /session  the current session's command log
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"colormatch/internal/core"
	"colormatch/internal/wei"
)

func main() {
	var (
		listen   = flag.String("listen", ":2000", "HTTP listen address")
		seed     = flag.Int64("seed", 1, "workcell simulation seed")
		realtime = flag.Bool("realtime", false, "run instruments on the wall clock")
		numOT2   = flag.Int("ot2s", 1, "number of liquid-handler modules")
		stock    = flag.Int("plates", 10, "plate stock in the storage towers")
	)
	flag.Parse()

	opts := core.WorkcellOptions{
		Seed:       *seed,
		RealTime:   *realtime,
		NumOT2:     *numOT2,
		PlateStock: *stock,
	}
	wc := core.NewSimWorkcell(opts)
	// Each /reset provisions a fresh workcell — full plate towers, filled
	// reservoirs, cleared device state — so every campaign starts from the
	// same stock the previous one did.
	srv := wei.NewWorkcellServer(wc.Registry, wei.ServerOptions{
		Reset: func() (*wei.Registry, error) {
			return core.NewSimWorkcell(opts).Registry, nil
		},
	})
	fmt.Printf("workcell: serving modules %v on %s (realtime=%v)\n",
		wc.Registry.Names(), *listen, *realtime)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "workcell:", err)
		os.Exit(1)
	}
}
