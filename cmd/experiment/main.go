// Command experiment regenerates the paper's tables and figures from the
// simulated workcell:
//
//	experiment -fig4            Figure 4 batch-size sweep (table + ASCII plot)
//	experiment -table1          Table 1 SDL metrics at B=1, paper vs measured
//	experiment -fig3            Figure 3 portal summary and run-detail views
//	experiment -solvers         §2.5 genetic vs Bayesian vs random
//	experiment -multiot2        §4 future-work: two OT-2s in parallel
//	experiment -faults          command-fault resilience sweep
//	experiment -write-configs d dump the embedded workcell/workflow YAML
//
// Flags -seed and -samples scale the workloads; defaults reproduce the
// paper's parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"colormatch/internal/core"
	"colormatch/internal/experiments"
)

func main() {
	var (
		fig4      = flag.Bool("fig4", false, "reproduce Figure 4 (batch-size sweep)")
		fig4stats = flag.Bool("fig4stats", false, "Figure 4 aggregate across seeds (trend beneath run-to-run luck)")
		repeats   = flag.Int("repeats", 3, "seeds per batch size for -fig4stats")
		table1    = flag.Bool("table1", false, "reproduce Table 1 (SDL metrics at B=1)")
		fig3      = flag.Bool("fig3", false, "reproduce Figure 3 (portal views)")
		solvers   = flag.Bool("solvers", false, "solver comparison (GA vs Bayes vs random)")
		multiot2  = flag.Bool("multiot2", false, "multi-OT2 future-work projection")
		faults    = flag.Bool("faults", false, "command-fault resilience sweep")
		targets   = flag.Bool("targets", false, "target-color sweep (beyond the paper's gray)")
		all       = flag.Bool("all", false, "run every reproduction")
		seed      = flag.Int64("seed", 2023, "experiment seed")
		samples   = flag.Int("samples", 0, "override total samples (0 = paper value)")
		writeCfg  = flag.String("write-configs", "", "write embedded YAML configs into this directory and exit")
	)
	flag.Parse()

	if *writeCfg != "" {
		if err := writeConfigs(*writeCfg); err != nil {
			fatal(err)
		}
		return
	}
	ran := false
	run := func(enabled bool, f func() error) {
		if !enabled && !*all {
			return
		}
		ran = true
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	run(*fig4, func() error {
		r, err := experiments.Figure4(*seed, *samples, nil)
		if err != nil {
			return err
		}
		r.Render(os.Stdout)
		return nil
	})
	run(*fig4stats, func() error {
		stats, err := experiments.Figure4Stats(*seed, *samples, *repeats, nil)
		if err != nil {
			return err
		}
		experiments.RenderFig4Stats(os.Stdout, stats)
		return nil
	})
	run(*table1, func() error {
		t, err := experiments.Table1(*seed)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return nil
	})
	run(*fig3, func() error {
		_, err := experiments.Figure3(*seed, os.Stdout)
		return err
	})
	run(*solvers, func() error {
		runs, err := experiments.SolverComparison(*seed, *samples, 8, 3, nil)
		if err != nil {
			return err
		}
		experiments.RenderSolverComparison(os.Stdout, runs)
		return nil
	})
	run(*multiot2, func() error {
		n := *samples
		if n == 0 {
			n = 64
		}
		m, err := experiments.MultiOT2(*seed, n)
		if err != nil {
			return err
		}
		m.Render(os.Stdout)
		return nil
	})
	run(*faults, func() error {
		pts, err := experiments.FaultResilience(*seed, *samples, nil)
		if err != nil {
			return err
		}
		experiments.RenderFaultResilience(os.Stdout, pts)
		return nil
	})

	run(*targets, func() error {
		runs, err := experiments.TargetSweep(*seed, *samples)
		if err != nil {
			return err
		}
		experiments.RenderTargetSweep(os.Stdout, runs)
		return nil
	})

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func writeConfigs(dir string) error {
	for name, content := range core.EmbeddedConfigs() {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiment:", err)
	os.Exit(1)
}
