// Command archlint runs the repository's own static-analysis gate: the
// internal/lint analyzers that enforce virtual-time, durability, and
// concurrency invariants no general-purpose linter knows about.
//
// Usage:
//
//	go run ./cmd/archlint ./...            # lint the whole tree
//	go run ./cmd/archlint -checks wallclock,durability ./internal/...
//	go run ./cmd/archlint -json ./... | jq '.findings[]'
//	go run ./cmd/archlint -list            # describe every check
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
// load errors. Run from the repository root — the wallclock and durability
// package scopes match repo-relative paths (or pass -C <repo-root>).
//
// Findings are suppressed at the offending line with
//
//	//lint:ignore <check>[,<check>] <reason>
//
// either trailing the line or on its own line directly above it; the
// reason is mandatory. See docs/LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"colormatch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the stable -json output shape.
type jsonReport struct {
	Findings []lint.Finding `json:"findings"`
	Count    int            `json:"count"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks  = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		jsonOut = fs.Bool("json", false, "report findings as JSON")
		list    = fs.Bool("list", false, "list available checks and exit")
		root    = fs.String("C", "", "lint relative to this directory instead of the current one")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	var enable map[string]bool
	if *checks != "" {
		known := map[string]bool{}
		for _, a := range analyzers {
			known[a.Name()] = true
		}
		enable = map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(stderr, "archlint: unknown check %q (use -list)\n", name)
				return 2
			}
			enable[name] = true
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	r := &lint.Runner{Root: *root, Analyzers: analyzers, Enable: enable}
	findings, err := r.Run(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if *jsonOut {
		rep := jsonReport{Findings: findings, Count: len(findings)}
		if rep.Findings == nil {
			rep.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "archlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "archlint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
