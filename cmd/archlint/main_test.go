package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a small Go tree under a temp dir for the CLI to
// lint via -C, so the tests never depend on the real repository state.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtyCtx = `package p

import "context"

type holder struct {
	ctx context.Context
}
`

const cleanCtx = `package p

import "context"

func run(ctx context.Context, n int) {}
`

const suppressedCtx = `package p

import "context"

type holder struct {
	//lint:ignore ctx-discipline test fixture: deliberate carrier
	ctx context.Context
}
`

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		exit int
	}{
		{"clean tree exits 0", cleanCtx, 0},
		{"findings exit 1", dirtyCtx, 1},
		{"suppressed findings exit 0", suppressedCtx, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root := writeTree(t, map[string]string{"p/p.go": c.src})
			var stdout, stderr bytes.Buffer
			got := run([]string{"-C", root, "./..."}, &stdout, &stderr)
			if got != c.exit {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", got, c.exit, stdout.String(), stderr.String())
			}
		})
	}
}

func TestTextOutput(t *testing.T) {
	root := writeTree(t, map[string]string{"p/p.go": dirtyCtx})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit %d, want 1", got)
	}
	out := stdout.String()
	if !strings.Contains(out, "p/p.go:6:") || !strings.Contains(out, "ctx-discipline") {
		t.Errorf("text output missing position or check name:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := writeTree(t, map[string]string{"p/p.go": dirtyCtx})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", got, stderr.String())
	}
	var report struct {
		Findings []struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Message string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if report.Count != 1 || len(report.Findings) != 1 {
		t.Fatalf("want exactly one finding, got count=%d findings=%d", report.Count, len(report.Findings))
	}
	f := report.Findings[0]
	if f.Check != "ctx-discipline" || filepath.ToSlash(f.File) != "p/p.go" || f.Line != 6 || f.Col <= 0 || f.Message == "" {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestJSONCleanTreeHasEmptyArray(t *testing.T) {
	root := writeTree(t, map[string]string{"p/p.go": cleanCtx})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, want 0", got)
	}
	// "findings": [] not null, so downstream jq pipelines never branch.
	if !strings.Contains(stdout.String(), `"findings": []`) && !strings.Contains(stdout.String(), `"findings":[]`) {
		t.Errorf("clean report should carry an empty findings array:\n%s", stdout.String())
	}
}

func TestChecksFlagFilters(t *testing.T) {
	root := writeTree(t, map[string]string{"p/p.go": dirtyCtx})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-checks", "sentinel-compare,durability", "./..."}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, want 0 (ctx-discipline disabled); stdout: %s", got, stdout.String())
	}
	stdout.Reset()
	if got := run([]string{"-C", root, "-checks", "ctx-discipline", "./..."}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit %d, want 1 (ctx-discipline enabled)", got)
	}
}

func TestUnknownCheckExitsTwo(t *testing.T) {
	root := writeTree(t, map[string]string{"p/p.go": cleanCtx})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-checks", "no-such-check", "./..."}, &stdout, &stderr); got != 2 {
		t.Fatalf("exit %d, want 2", got)
	}
	if !strings.Contains(stderr.String(), "no-such-check") {
		t.Errorf("stderr should name the unknown check:\n%s", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, want 0", got)
	}
	out := stdout.String()
	for _, name := range []string{"wallclock", "durability", "goroutine-fatal", "sentinel-compare", "ctx-discipline"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}
