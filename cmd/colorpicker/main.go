// Command colorpicker runs one color-matching experiment end to end on the
// simulated workcell and prints the trace, the best match, and the SDL
// metrics. It is the command-line face of the paper's color_picker_app.py.
//
//	colorpicker -batch 1 -samples 128 -solver genetic -seed 7
//	colorpicker -target 7a3c96 -metric delta-e-2000 -stop 5
//	colorpicker -events events.jsonl -records runs/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"colormatch/internal/color"
	"colormatch/internal/core"
	"colormatch/internal/experiments"
	"colormatch/internal/flow"
	"colormatch/internal/metrics"
	"colormatch/internal/portal"
	"colormatch/internal/sim"
	"colormatch/internal/wei"
)

func main() {
	var (
		batch      = flag.Int("batch", 1, "batch size B (samples per iteration)")
		samples    = flag.Int("samples", 128, "total sample budget N")
		solverName = flag.String("solver", "genetic", "solver: genetic|genetic-grid|bayesian|random|grid|analytic")
		seed       = flag.Int64("seed", 1, "experiment seed")
		targetHex  = flag.String("target", "787878", "target color as RRGGBB hex (paper: 787878)")
		metricName = flag.String("metric", "euclidean-rgb", "scoring metric: euclidean-rgb|delta-e-76|delta-e-94|delta-e-2000")
		stop       = flag.Float64("stop", 0, "stop early when best score <= this (0 = run full budget)")
		eventsOut  = flag.String("events", "", "write the event log (JSON lines) to this file")
		resultOut  = flag.String("save", "", "save the full result (samples, trace, metrics) as JSON to this file")
		recordsDir = flag.String("records", "", "write per-workflow step timing files into this directory")
		quiet      = flag.Bool("quiet", false, "suppress the per-iteration trace")
	)
	flag.Parse()

	target, err := color.ParseHex(*targetHex)
	if err != nil {
		fatal(err)
	}
	metric, ok := color.ParseMetric(*metricName)
	if !ok {
		fatal(fmt.Errorf("unknown metric %q", *metricName))
	}

	wc := core.NewSimWorkcell(core.WorkcellOptions{Seed: *seed})
	log := wei.NewEventLog(wc.Clock)
	engine := wei.NewEngine(wc.Registry, wc.Clock, log)
	engine.RecordDir = *recordsDir
	sol, err := experiments.NewSolver(*solverName, sim.NewRNG(*seed).Derive("solver"), target)
	if err != nil {
		fatal(err)
	}
	app, err := core.NewApp(core.Config{
		Experiment:   "colorpicker_cli",
		Target:       target,
		Metric:       metric,
		BatchSize:    *batch,
		TotalSamples: *samples,
		StopScore:    *stop,
	}, engine, sol)
	if err != nil {
		fatal(err)
	}
	store := portal.NewStore()
	app.EnablePublishing(flow.NewRunner(wc.Clock), store)

	res, err := app.Run(context.Background())
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Println("sample  elapsed      score   best")
		for _, p := range res.Trace {
			fmt.Printf("%6d  %9s  %6.1f  %6.1f\n",
				p.Sample, p.Elapsed.Round(1e9), p.Score, p.Best)
		}
		fmt.Println()
	}
	fmt.Printf("solver=%s B=%d N=%d seed=%d\n", sol.Name(), *batch, *samples, *seed)
	fmt.Printf("best match #%02x%02x%02x at score %.2f (target #%02x%02x%02x)\n",
		res.Best.Color.R, res.Best.Color.G, res.Best.Color.B, res.Best.Score,
		target.R, target.G, target.B)
	fmt.Printf("experiment time %v, %d plates, %d records published\n\n",
		res.Elapsed().Round(1e9), res.Plates, res.Published)
	metrics.RenderTable1(os.Stdout, res.Metrics)

	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := log.WriteJSON(f); err != nil {
			fatal(err)
		}
	}
	if *resultOut != "" {
		if err := core.SaveResult(*resultOut, res, false); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "colorpicker:", err)
	os.Exit(1)
}
