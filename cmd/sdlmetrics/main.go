// Command sdlmetrics computes the paper's proposed self-driving-lab metrics
// (Table 1) from a saved event log — post-hoc analysis of a completed
// experiment, as the paper's continuous publication enables.
//
//	colorpicker -batch 1 -samples 16 -events run.jsonl
//	sdlmetrics -events run.jsonl -colors 16
package main

import (
	"flag"
	"fmt"
	"os"

	"colormatch/internal/metrics"
	"colormatch/internal/wei"
)

func main() {
	var (
		eventsPath = flag.String("events", "", "event log (JSON lines) written by colorpicker -events (required)")
		colors     = flag.Int("colors", 0, "total color samples produced in the run (required)")
	)
	flag.Parse()
	if *eventsPath == "" || *colors <= 0 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*eventsPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := wei.ReadEventsJSON(f)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("event log %s is empty", *eventsPath))
	}
	s := metrics.Compute(events, *colors)
	fmt.Printf("events: %d, span %v\n\n", len(events), s.Wall.Round(1e9))
	metrics.RenderTable1(os.Stdout, s)
	fmt.Printf("\n%-42s %d\n", "Failed command attempts", s.FailedCommands)
	fmt.Printf("%-42s %d\n", "Data uploads", s.Uploads)
	if s.Uploads > 1 {
		fmt.Printf("%-42s %v\n", "Mean upload interval", s.MeanUploadInterval.Round(1e9))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdlmetrics:", err)
	os.Exit(1)
}
