// Command portalwatch follows a portal's live event stream: the dashboard
// client for cmd/fleet -stream. It connects to GET /watch, prints each step
// event as a line (or raw JSON with -json), and on any disconnect — network
// blip, portal restart, slow-consumer eviction — reconnects from its last
// cursor, so the printed sequence has no gaps and no duplicates.
//
//	portalwatch -url http://localhost:2100
//	portalwatch -url http://localhost:2100 -experiment fleet_campaign-007
//	portalwatch -url http://localhost:2100 -from-start -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"colormatch/internal/portal"
)

func main() {
	url := flag.String("url", "http://localhost:2100", "portal base URL")
	experiment := flag.String("experiment", "", "filter to one experiment; empty watches everything")
	fromStart := flag.Bool("from-start", false, "backfill from the beginning of the retained stream instead of starting live")
	asJSON := flag.Bool("json", false, "print raw event JSON lines instead of the column view")
	retry := flag.Duration("retry", 2*time.Second, "pause before reconnecting after a dropped watch")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	client := portal.NewClient(*url)
	cursor := ""
	if *fromStart {
		cursor = portal.StreamStart
	}
	for ctx.Err() == nil {
		cursor = watchOnce(ctx, client, *experiment, cursor, *asJSON)
		if ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "portalwatch: stream dropped; resuming from cursor in %v\n", *retry)
			select {
			case <-ctx.Done():
			case <-time.After(*retry):
			}
		}
	}
}

// watchOnce consumes one connection until it drops, returning the cursor to
// resume from. A cursor the portal no longer retains (410) falls back to a
// live subscription rather than looping on a dead position.
func watchOnce(ctx context.Context, client *portal.Client, experiment, cursor string, asJSON bool) string {
	w, err := client.Watch(ctx, portal.WatchOptions{Experiment: experiment, Cursor: cursor})
	if err != nil {
		if errors.Is(err, portal.ErrCursorTruncated) {
			fmt.Fprintln(os.Stderr, "portalwatch: cursor behind the portal's retained window; restarting live")
			return ""
		}
		fmt.Fprintln(os.Stderr, "portalwatch:", err)
		return cursor
	}
	defer w.Close()
	for {
		ev, err := w.Next()
		if err != nil {
			switch {
			case errors.Is(err, portal.ErrSlowSubscriber):
				fmt.Fprintln(os.Stderr, "portalwatch: evicted as a slow consumer; resuming from cursor")
			case errors.Is(err, portal.ErrStreamClosed):
				fmt.Fprintln(os.Stderr, "portalwatch: portal closed the stream")
			case errors.Is(err, io.EOF):
				// connection ended without a verdict; resume
			}
			return w.Cursor()
		}
		printEvent(ev, asJSON)
	}
}

func printEvent(ev portal.StreamEvent, asJSON bool) {
	if asJSON {
		// Marshal cannot fail on a decoded StreamEvent; fall through silently.
		fmt.Printf("%s\n", mustJSON(ev))
		return
	}
	detail := ev.Step
	if ev.Module != "" {
		detail += " " + ev.Module + "/" + ev.Action
	}
	if ev.Note != "" {
		detail += " (" + ev.Note + ")"
	}
	fmt.Printf("%8d  %s  %-22s %-18s %-17s %s\n",
		ev.Seq, ev.Time.Format("15:04:05.000"), ev.Experiment, ev.Campaign, ev.Kind, detail)
}

func mustJSON(ev portal.StreamEvent) []byte {
	data, err := json.Marshal(ev)
	if err != nil {
		return []byte(fmt.Sprintf(`{"seq":%d,"error":%q}`, ev.Seq, err))
	}
	return data
}
