// Command wfrun validates and executes a single workflow YAML file against
// a workcell — the WEI-style command-line workflow runner.
//
//	wfrun -workcell configs/rpl_workcell.yaml -workflow configs/workflows/cp_wf_newplate.yaml \
//	      -param ot2=ot2 -param ot2_deck=ot2.deck
//
// By default it runs against a fresh in-process simulated workcell; with
// -server it dispatches to a remote cmd/workcell over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"colormatch/internal/core"
	"colormatch/internal/wei"
)

type paramList map[string]string

func (p paramList) String() string { return fmt.Sprint(map[string]string(p)) }

func (p paramList) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("param must be key=value, got %q", v)
	}
	p[key] = val
	return nil
}

func main() {
	params := paramList{}
	var (
		workcellPath = flag.String("workcell", "", "workcell YAML (validates module targets when given)")
		workflowPath = flag.String("workflow", "", "workflow YAML to run (required)")
		server       = flag.String("server", "", "remote workcell base URL (default: in-process simulation)")
		seed         = flag.Int64("seed", 1, "simulation seed (in-process mode)")
		validateOnly = flag.Bool("validate", false, "parse and validate only; do not run")
	)
	flag.Var(params, "param", "workflow parameter key=value (repeatable)")
	flag.Parse()

	if *workflowPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	wf, err := wei.LoadWorkflow(*workflowPath)
	if err != nil {
		fatal(err)
	}
	if *workcellPath != "" {
		wc, err := wei.LoadWorkcell(*workcellPath)
		if err != nil {
			fatal(err)
		}
		if err := wf.Validate(wc); err != nil {
			fatal(err)
		}
		fmt.Printf("wfrun: %q validates against workcell %q\n", wf.Name, wc.Name)
	}
	if *validateOnly {
		return
	}

	sim := core.NewSimWorkcell(core.WorkcellOptions{Seed: *seed})
	var client wei.Client = sim.Registry
	if *server != "" {
		client = wei.NewHTTPClient(*server, sim.Registry.Names()...)
	}
	log := wei.NewEventLog(sim.Clock)
	engine := wei.NewEngine(client, sim.Clock, log)

	// Fail fast on module/action typos before moving any hardware.
	if err := engine.Preflight(context.Background(), wf); err != nil {
		fatal(err)
	}

	runParams := make(map[string]any, len(params))
	for k, v := range params {
		runParams[k] = v
	}
	rec, err := engine.RunWorkflow(context.Background(), wf, runParams)
	for _, s := range rec.Steps {
		status := "ok"
		if s.Err != "" {
			status = "FAILED: " + s.Err
		}
		fmt.Printf("  %-22s %-10s %-16s %10s  %s\n",
			s.Name, s.Module, s.Action, s.Duration.Round(1e9), status)
	}
	fmt.Printf("wfrun: %s finished in %v\n", wf.Name, rec.Duration.Round(1e9))
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wfrun:", err)
	os.Exit(1)
}
