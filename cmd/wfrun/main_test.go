package main

import "testing"

func TestParamListSet(t *testing.T) {
	p := paramList{}
	if err := p.Set("ot2=ot2_b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("deck=ot2_b.deck"); err != nil {
		t.Fatal(err)
	}
	if p["ot2"] != "ot2_b" || p["deck"] != "ot2_b.deck" {
		t.Fatalf("params = %v", p)
	}
	if err := p.Set("no-equals"); err == nil {
		t.Fatal("accepted param without =")
	}
	// Values may contain '=' after the first.
	if err := p.Set("q=a=b"); err != nil || p["q"] != "a=b" {
		t.Fatalf("q = %q, %v", p["q"], err)
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
