// Command portalload is an HTTP load generator for the data portal. It
// drives mixed search / summary / batch-ingest traffic against a portal
// server at configurable concurrency and reports per-operation p50/p99
// latencies, overall throughput, and — when it hosts the server itself —
// a restart benchmark comparing sequential replay of the raw segment log
// against chunk-parallel replay of the compacted archive.
//
//	portalload                                  # self-hosted, defaults
//	portalload -clients 64 -duration 10s
//	portalload -url http://portal:2100          # target a running portal
//	portalload -out BENCH_portalload.json
//
// With no -url the tool starts its own portal server on a loopback port,
// backed by a durable store in -data (a temp directory by default), so one
// invocation measures the full production read path: preload -records
// records, measure search latency on an idle store, then run the mixed
// phase and report how much sustained ingest inflates search tail latency
// (ingest_impact_ratio). Finally it shuts the server down and measures
// restart time three ways: sequential replay of the uncompacted log,
// then — after a compaction — sequential and parallel replay of the
// compacted archive (restart.speedup is uncompacted-sequential over
// compacted-parallel).
//
// When self-hosted the tool also mounts a durable streaming hub and runs a
// watch phase: SSE subscribers follow the live event stream while paced
// publishers POST /events batches, and the report gains fan-out latency
// percentiles, delivery throughput, and a zero-loss check.
//
// Against an external -url only the traffic phases run: the restart and
// watch benchmarks need to own the server.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"colormatch/internal/portal"
)

type opStats struct {
	mu      sync.Mutex
	name    string
	micros  []float64
	errs    int
	records int // records moved by this op class (ingest batches, search pages)
}

func (o *opStats) record(d time.Duration, recs int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err != nil {
		o.errs++
		return
	}
	o.micros = append(o.micros, float64(d.Microseconds()))
	o.records += recs
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (o *opStats) summary() map[string]any {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := append([]float64(nil), o.micros...)
	sort.Float64s(s)
	return map[string]any{
		"count":   len(s),
		"errors":  o.errs,
		"records": o.records,
		"p50_us":  percentile(s, 0.50),
		"p99_us":  percentile(s, 0.99),
	}
}

func (o *opStats) p99() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := append([]float64(nil), o.micros...)
	sort.Float64s(s)
	return percentile(s, 0.99)
}

func main() {
	url := flag.String("url", "", "portal base URL to load; empty starts a self-hosted server")
	dataDir := flag.String("data", "", "data directory for the self-hosted store; empty uses a temp dir")
	clients := flag.Int("clients", 32, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "length of each traffic phase (idle and mixed)")
	records := flag.Int("records", 10000, "records to preload before measuring")
	out := flag.String("out", "", "write the JSON report here; empty prints to stdout")
	seed := flag.Int64("seed", 1, "base RNG seed (each client derives its own)")
	searchW := flag.Int("search-weight", 6, "relative weight of search ops in the mixed phase")
	summaryW := flag.Int("summary-weight", 2, "relative weight of summary ops in the mixed phase")
	ingestW := flag.Int("ingest-weight", 2, "relative weight of batch-ingest ops in the mixed phase")
	watchers := flag.Int("watchers", 8, "SSE subscribers in the watch phase (self-hosted only; 0 skips it)")
	watchRate := flag.Int("watch-rate", 2000, "events/second published during the watch phase")
	watchBatch := flag.Int("watch-batch", 40, "events per POST /events batch in the watch phase")
	flag.Parse()

	report := map[string]any{
		"tool":       "portalload",
		"clients":    *clients,
		"duration_s": duration.Seconds(),
		"records":    *records,
		"weights":    map[string]int{"search": *searchW, "summary": *summaryW, "ingest": *ingestW},
	}

	var store *portal.Store
	var hub *portal.Hub
	var srv *http.Server
	base := *url
	selfHosted := base == ""
	if selfHosted {
		dir := *dataDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "portalload-*")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
		}
		// Small segments so the preload seals enough of the log for the
		// restart benchmark's compaction to have real work to fold.
		var err error
		store, err = portal.OpenStoreWith(dir, portal.Options{SegmentBytes: 256 << 10})
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		// Durable event stream beside the record store, like cmd/portal
		// with -data: the watch phase measures the full production fan-out
		// path, fsync per publish included.
		hub, err = portal.OpenHub(portal.HubOptions{Dir: filepath.Join(dir, "events")})
		if err != nil {
			fatal(err)
		}
		srv = &http.Server{Handler: portal.Serve(store, portal.WithHub(hub))}
		go func() { _ = srv.Serve(ln) }()
		base = "http://" + ln.Addr().String()
		report["data_dir"] = dir
		fmt.Fprintf(os.Stderr, "portalload: self-hosted portal at %s (data in %s)\n", base, dir)
	}
	report["url"] = base

	// One shared client per worker would serialize on the default
	// transport's two idle conns per host; size the pool to the fleet.
	transport := &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}
	newClient := func() *portal.Client {
		c := portal.NewClient(base)
		c.HTTP = &http.Client{Transport: transport, Timeout: 30 * time.Second}
		return c
	}

	// Preload: -records records across 10 experiments in 500-record batches,
	// over HTTP like any real publisher.
	const experiments = 10
	t0 := time.Date(2023, 8, 16, 9, 0, 0, 0, time.UTC)
	pre := newClient()
	batch := make([]portal.Record, 0, 500)
	for i := 0; i < *records; i++ {
		batch = append(batch, loadRecord(t0, i, i%experiments))
		if len(batch) == cap(batch) || i == *records-1 {
			if _, err := pre.IngestBatch(batch); err != nil {
				fatal(fmt.Errorf("preload: %w", err))
			}
			batch = batch[:0]
		}
	}
	fmt.Fprintf(os.Stderr, "portalload: preloaded %d records across %d experiments\n", *records, experiments)

	expName := func(i int) string { return fmt.Sprintf("exp-%d", i%experiments) }

	// Phase 1 — idle: search-only traffic against a store receiving no
	// writes. Its p99 is the baseline the mixed phase is judged against.
	idleSearch := &opStats{name: "search"}
	runPhase(*clients, *duration, *seed, func(rng *rand.Rand, c *portal.Client) {
		start := time.Now()
		page, err := c.SearchPage(portal.Query{Experiment: expName(rng.Intn(experiments)), Limit: 50})
		idleSearch.record(time.Since(start), len(page.Records), err)
	}, newClient)
	report["idle"] = map[string]any{"search": idleSearch.summary()}

	// Phase 2 — mixed: weighted search/summary/ingest from every client.
	search := &opStats{name: "search"}
	summaryS := &opStats{name: "summary"}
	ingest := &opStats{name: "ingest"}
	total := *searchW + *summaryW + *ingestW
	if total <= 0 {
		fatal(fmt.Errorf("op weights sum to zero"))
	}
	var ingestSeq, mixedOps int64
	var seqMu sync.Mutex
	mixedStart := time.Now()
	runPhase(*clients, *duration, *seed+1000, func(rng *rand.Rand, c *portal.Client) {
		seqMu.Lock()
		mixedOps++
		seqMu.Unlock()
		switch w := rng.Intn(total); {
		case w < *searchW:
			start := time.Now()
			page, err := c.SearchPage(portal.Query{Experiment: expName(rng.Intn(experiments)), Limit: 50})
			search.record(time.Since(start), len(page.Records), err)
		case w < *searchW+*summaryW:
			start := time.Now()
			_, err := c.Summary(expName(rng.Intn(experiments)))
			summaryS.record(time.Since(start), 0, err)
		default:
			seqMu.Lock()
			n := ingestSeq
			ingestSeq++
			seqMu.Unlock()
			recs := make([]portal.Record, 20)
			for i := range recs {
				recs[i] = loadRecord(t0.Add(time.Hour), int(n)*len(recs)+i, rng.Intn(experiments))
			}
			start := time.Now()
			ids, err := c.IngestBatch(recs)
			ingest.record(time.Since(start), len(ids), err)
		}
	}, newClient)
	mixedElapsed := time.Since(mixedStart)

	idleP99 := idleSearch.p99()
	mixedP99 := search.p99()
	impact := 0.0
	if idleP99 > 0 {
		impact = mixedP99 / idleP99
	}
	report["mixed"] = map[string]any{
		"search":  search.summary(),
		"summary": summaryS.summary(),
		"ingest":  ingest.summary(),
		"qps":     float64(mixedOps) / mixedElapsed.Seconds(),
	}
	report["ingest_impact_ratio"] = impact
	fmt.Fprintf(os.Stderr, "portalload: mixed phase %.0f ops/s, search p99 %.0fµs (idle %.0fµs, impact %.2fx)\n",
		float64(mixedOps)/mixedElapsed.Seconds(), mixedP99, idleP99, impact)

	// Phase 3 — watch (self-hosted only): every subscriber follows the live
	// SSE stream while paced publishers POST event batches; measures the
	// fan-out path end to end (publish RTT + hub append/fsync + per-
	// subscriber delivery + SSE parse). Subscribers connect before the
	// first publish, so every published event is owed to every subscriber —
	// "lost" must come out zero.
	if selfHosted && *watchers > 0 {
		report["watch"] = runWatchPhase(newClient, *watchers, *watchRate, *watchBatch, *duration)
	}

	// Phase 4 — restart benchmark (self-hosted only): how long until the
	// archive is queryable again after a process restart, before and after
	// compaction.
	if selfHosted {
		srv.Close()
		if err := hub.Close(); err != nil {
			fatal(err)
		}
		if err := store.Close(); err != nil {
			fatal(err)
		}
		dir := report["data_dir"].(string)
		var count int
		timeReplay := func(workers int) time.Duration {
			best := time.Duration(1<<62 - 1)
			for i := 0; i < 3; i++ {
				start := time.Now()
				st, err := portal.OpenStoreWith(dir, portal.Options{ReplayWorkers: workers})
				if err != nil {
					fatal(err)
				}
				el := time.Since(start)
				if count == 0 {
					count = st.Len()
				} else if st.Len() != count {
					fatal(fmt.Errorf("restart bench: replay returned %d records, want %d", st.Len(), count))
				}
				if err := st.Close(); err != nil {
					fatal(err)
				}
				if el < best {
					best = el
				}
			}
			return best
		}
		seqUncompacted := timeReplay(1)
		st, err := portal.OpenStoreWith(dir, portal.Options{SegmentBytes: 256 << 10})
		if err != nil {
			fatal(err)
		}
		if err := st.Compact(); err != nil {
			fatal(err)
		}
		if err := st.Close(); err != nil {
			fatal(err)
		}
		parCompacted := timeReplay(0)
		seqCompacted := timeReplay(1)
		speedup := float64(seqUncompacted) / float64(parCompacted)
		report["restart"] = map[string]any{
			"records":                   count,
			"uncompacted_sequential_ms": ms(seqUncompacted),
			"compacted_parallel_ms":     ms(parCompacted),
			"compacted_sequential_ms":   ms(seqCompacted),
			"speedup":                   speedup,
		}
		fmt.Fprintf(os.Stderr, "portalload: restart %d records: %.1fms uncompacted-seq, %.1fms compacted-par (%.2fx)\n",
			count, ms(seqUncompacted), ms(parCompacted), speedup)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// runWatchPhase measures live fan-out: `watchers` SSE subscriptions drain
// the stream while two publishers push `rate` events/second in batches of
// `batch`. Per-event latency is receive wall time minus the event's
// PubNanos stamp (same process, same clock), and after publishing stops the
// phase waits for every owed delivery — anything still missing after the
// grace period is reported as lost.
func runWatchPhase(newClient func() *portal.Client, watchers, rate, batch int, d time.Duration) map[string]any {
	const experiment = "watch-bench"
	fanout := &opStats{name: "fanout"}
	var published, delivered, evicted, watchErrs int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ready, wg sync.WaitGroup
	for w := 0; w < watchers; w++ {
		ready.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			watcher, err := newClient().Watch(ctx, portal.WatchOptions{Experiment: experiment})
			ready.Done()
			if err != nil {
				atomic.AddInt64(&watchErrs, 1)
				return
			}
			defer watcher.Close()
			for {
				ev, err := watcher.Next()
				if err != nil {
					if errors.Is(err, portal.ErrSlowSubscriber) {
						atomic.AddInt64(&evicted, 1)
					}
					return
				}
				fanout.record(time.Since(time.Unix(0, ev.PubNanos)), 1, nil)
				atomic.AddInt64(&delivered, 1)
			}
		}()
	}
	ready.Wait() // every subscriber registered before the first publish

	pub := newClient()
	interval := time.Second * time.Duration(batch) / time.Duration(rate)
	start := time.Now()
	deadline := start.Add(d)
	tick := time.NewTicker(interval)
	for now := time.Now(); now.Before(deadline); now = <-tick.C {
		evs := make([]portal.StreamEvent, batch)
		stamp := time.Now().UnixNano()
		for i := range evs {
			evs[i] = portal.StreamEvent{
				Experiment: experiment,
				Kind:       "bench",
				Time:       time.Unix(0, stamp),
				SrcSeq:     int(published) + i,
				PubNanos:   stamp,
			}
		}
		if _, err := pub.PublishEvents(evs); err != nil {
			fatal(fmt.Errorf("watch phase publish: %w", err))
		}
		atomic.AddInt64(&published, int64(batch))
	}
	tick.Stop()
	elapsed := time.Since(start)

	// Drain grace: the stream is done publishing; give subscribers a bounded
	// window to finish consuming what they are owed.
	expected := atomic.LoadInt64(&published) * int64(watchers-int(atomic.LoadInt64(&watchErrs)))
	for wait := time.Now().Add(10 * time.Second); atomic.LoadInt64(&delivered) < expected && time.Now().Before(wait); {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()

	got := atomic.LoadInt64(&delivered)
	res := map[string]any{
		"subscribers":    watchers,
		"published":      atomic.LoadInt64(&published),
		"delivered":      got,
		"lost":           expected - got,
		"evicted":        atomic.LoadInt64(&evicted),
		"watch_errors":   atomic.LoadInt64(&watchErrs),
		"events_per_sec": float64(got) / elapsed.Seconds(),
		"fanout":         fanout.summary(),
	}
	fmt.Fprintf(os.Stderr, "portalload: watch phase %d subscribers, %.0f deliveries/s, fanout p99 %.0fµs, lost %d\n",
		watchers, float64(got)/elapsed.Seconds(), fanout.p99(), expected-got)
	return res
}

// runPhase runs op from `clients` goroutines until the deadline. Each
// worker gets its own portal client and deterministic RNG.
func runPhase(clients int, d time.Duration, seed int64, op func(*rand.Rand, *portal.Client), newClient func() *portal.Client) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			c := newClient()
			for time.Now().Before(deadline) {
				op(rng, c)
			}
		}(w)
	}
	wg.Wait()
}

// loadRecord builds the synthetic record shape every phase ingests.
func loadRecord(t0 time.Time, i, exp int) portal.Record {
	return portal.Record{
		Experiment: fmt.Sprintf("exp-%d", exp),
		Run:        i % 12,
		Time:       t0.Add(time.Duration(i) * time.Second),
		Fields: map[string]any{
			"samples":    15,
			"best_score": float64(i%100) / 10,
			"duration_s": 42.5,
			"plate":      fmt.Sprintf("plate-%04d", i),
		},
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "portalload:", err)
	os.Exit(1)
}
