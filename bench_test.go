// Benchmarks that regenerate the paper's evaluation. One benchmark per
// table/figure plus ablations; each reports the experiment's headline
// numbers as custom metrics:
//
//	score      final best color distance (Figure 4 y-axis)
//	vmin       virtual experiment minutes (robot time, not wall time)
//	ccwh       completed commands without humans (Table 1)
//	...
//
// By default the workloads are reduced so `go test -bench=.` finishes in a
// few minutes. Set COLORMATCH_FULL=1 to run the paper-scale workloads
// (N=128 and the full batch sweep), or use cmd/experiment for the printed
// tables and plots.
package colormatch

import (
	"context"
	"fmt"
	"io"
	"os"
	"testing"

	"colormatch/internal/experiments"
	"colormatch/internal/fleet"
	"colormatch/internal/sim"
	"colormatch/internal/solver/bayes"
	"colormatch/internal/solver/ga"
)

// fullScale reports whether paper-scale workloads were requested.
func fullScale() bool { return os.Getenv("COLORMATCH_FULL") == "1" }

func benchSamples(reduced int) int {
	if fullScale() {
		return 128
	}
	return reduced
}

// BenchmarkFigure4 regenerates the paper's Figure 4: one experiment per
// batch size, reporting the final best score and the virtual experiment
// duration. Paper shape: larger B ⇒ shorter experiment; smaller B tends to
// reach lower scores.
func BenchmarkFigure4(b *testing.B) {
	batches := []int{1, 8, 64}
	if fullScale() {
		batches = experiments.Figure4BatchSizes
	}
	n := benchSamples(32)
	for _, batch := range batches {
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			var score, vmin float64
			for i := 0; i < b.N; i++ {
				r, err := Figure4(2023+int64(i), n, []int{batch})
				if err != nil {
					b.Fatal(err)
				}
				score = r.Series[0].Final
				vmin = r.Series[0].Wall.Minutes()
			}
			b.ReportMetric(score, "score")
			b.ReportMetric(vmin, "vmin")
		})
	}
}

// BenchmarkTable1 regenerates the paper's Table 1 metrics on a B=1 run:
// TWH, CCWH, synthesis/transfer split, and time per color.
func BenchmarkTable1(b *testing.B) {
	n := benchSamples(16)
	var t1 *Table1Result
	for i := 0; i < b.N; i++ {
		res, _, err := Run(Config{
			Experiment:   "bench_table1",
			BatchSize:    1,
			TotalSamples: n,
		}, RunOptions{Seed: 2023 + int64(i), Publish: true})
		if err != nil {
			b.Fatal(err)
		}
		t1 = &Table1Result{Summary: res.Metrics, Result: res}
	}
	s := t1.Summary
	b.ReportMetric(s.TWH.Minutes(), "twh-min")
	b.ReportMetric(float64(s.CCWH), "ccwh")
	b.ReportMetric(s.SynthesisTime.Minutes(), "synth-min")
	b.ReportMetric(s.TransferTime.Minutes(), "transfer-min")
	b.ReportMetric(s.TimePerColor.Seconds(), "sec-per-color")
}

// BenchmarkTable1Full regenerates Table 1 at the paper's exact workload
// (B=1, N=128) regardless of COLORMATCH_FULL, paying ~40s per iteration.
func BenchmarkTable1Full(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	var t1 *Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = Table1(2023 + int64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	s := t1.Summary
	b.ReportMetric(s.TWH.Minutes(), "twh-min")
	b.ReportMetric(float64(s.CCWH), "ccwh")
	b.ReportMetric(s.SynthesisTime.Minutes(), "synth-min")
	b.ReportMetric(s.TransferTime.Minutes(), "transfer-min")
	b.ReportMetric(s.TimePerColor.Seconds(), "sec-per-color")
	b.ReportMetric(float64(s.Uploads), "uploads")
}

// BenchmarkFigure3 regenerates the paper's Figure 3 campaign: multiple runs
// published to the portal, then the summary and run-detail views.
func BenchmarkFigure3(b *testing.B) {
	var records float64
	for i := 0; i < b.N; i++ {
		store, err := Figure3(2023+int64(i), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		records = float64(store.Len())
	}
	b.ReportMetric(records, "records")
}

// BenchmarkSolverComparison reproduces the §2.5 comparison. Documented
// divergence: our from-scratch Bayesian solver does systematically beat the
// genetic one on this workload (the paper reported no improvement for its
// implementation); the analytic oracle bounds everyone. See EXPERIMENTS.md.
func BenchmarkSolverComparison(b *testing.B) {
	n := benchSamples(48)
	for _, name := range []string{"genetic", "bayesian", "random", "analytic"} {
		b.Run(name, func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, _, err := Run(Config{
					Experiment:   "bench_solvers",
					BatchSize:    8,
					TotalSamples: n,
				}, RunOptions{Seed: 2023 + int64(i), Solver: name})
				if err != nil {
					b.Fatal(err)
				}
				final = res.Trace[len(res.Trace)-1].Best
			}
			b.ReportMetric(final, "score")
		})
	}
}

// BenchmarkMultiOT2 reproduces the §4 future-work projection: two OT-2s
// raise CCWH and cut wall time for the same sample count.
func BenchmarkMultiOT2(b *testing.B) {
	n := benchSamples(16)
	var speedup, ccwhRatio float64
	for i := 0; i < b.N; i++ {
		m, err := MultiOT2(2023+int64(i), n)
		if err != nil {
			b.Fatal(err)
		}
		speedup = m.SingleWall.Seconds() / m.DualWall.Seconds()
		ccwhRatio = float64(m.DualCCWH) / float64(m.SingleCCWH)
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(ccwhRatio, "ccwh-ratio")
}

// fleetCampaigns builds the fleet benchmark workload: n equal campaigns
// with the GA solver and a per-campaign sample budget.
func fleetCampaigns(n, samples int) []fleet.Campaign {
	campaigns := make([]fleet.Campaign, n)
	for i := range campaigns {
		campaigns[i] = fleet.Campaign{Config: Config{TotalSamples: samples}}
	}
	return campaigns
}

// BenchmarkFleet measures the fleet campaign scheduler on the concurrency
// workload: 8 campaigns across 1 vs 4 workcells. Makespan is the busiest
// workcell's virtual time (robot wall-clock), so the reported speedup —
// sequential baseline over makespan — reflects fleet scheduling and is
// independent of host CPU count. Expected shape: ~1.0 speedup at one
// workcell, approaching 4 at four.
func BenchmarkFleet(b *testing.B) {
	n := benchSamples(16)
	for _, m := range []int{1, 4} {
		b.Run(fmt.Sprintf("workcells=%d", m), func(b *testing.B) {
			var makespan, speedup, util float64
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(context.Background(), fleetCampaigns(8, n), fleet.Options{
					Workcells: m,
					Batch:     4,
					Seed:      2023 + int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 8 {
					b.Fatalf("completed %d of 8 campaigns", res.Completed)
				}
				makespan = res.Makespan.Minutes()
				speedup = res.Speedup
				util = 0
				for _, wc := range res.Workcells {
					util += wc.Utilization
				}
				util /= float64(len(res.Workcells))
			}
			b.ReportMetric(makespan, "makespan-min")
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(util, "utilization")
		})
	}
}

// BenchmarkFleetPipelined measures module-lease pipelining: the same
// 8-campaign workload on the same seed through one workcell with 1 vs 2
// lanes. With K=2 each campaign owns a liquid handler while the crane, arm
// and camera are leased per command, so one campaign mixes while another
// stages or photographs — K=2 makespan must come in under K=1 on every run.
func BenchmarkFleetPipelined(b *testing.B) {
	n := benchSamples(16)
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("lanes=%d", k), func(b *testing.B) {
			var makespan, speedup, queueWait float64
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(context.Background(), fleetCampaigns(8, n), fleet.Options{
					Workcells:    1,
					LanesPerCell: k,
					Batch:        4,
					Seed:         2023 + int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != 8 {
					b.Fatalf("completed %d of 8 campaigns", res.Completed)
				}
				makespan = res.Makespan.Minutes()
				speedup = res.Speedup
				queueWait = res.QueueWait.Minutes()
			}
			b.ReportMetric(makespan, "makespan-min")
			b.ReportMetric(speedup, "speedup")
			b.ReportMetric(queueWait, "queue-wait-min")
		})
	}
}

// BenchmarkFaultResilience measures the retry machinery under command
// receive faults (the failure mode behind the paper's CCWH metric).
func BenchmarkFaultResilience(b *testing.B) {
	for _, rate := range []float64{0, 0.05, 0.15} {
		b.Run(fmt.Sprintf("p=%.2f", rate), func(b *testing.B) {
			var retries, completed float64
			for i := 0; i < b.N; i++ {
				pts, err := FaultResilience(2023+int64(i), 16, []float64{rate})
				if err != nil {
					b.Fatal(err)
				}
				retries = float64(pts[0].Retries)
				if pts[0].Completed {
					completed = 1
				}
			}
			b.ReportMetric(retries, "retries")
			b.ReportMetric(completed, "completed")
		})
	}
}

// BenchmarkAblationDeckMode compares the paper's camera-resident plate loop
// against the deck-resident variant used for multi-OT2 operation. Both move
// the plate twice per iteration, so virtual time should be equal — the
// parity result that justifies using deck mode for concurrent loops.
func BenchmarkAblationDeckMode(b *testing.B) {
	n := benchSamples(16)
	for _, deck := range []bool{false, true} {
		b.Run(fmt.Sprintf("deck=%v", deck), func(b *testing.B) {
			var vmin float64
			for i := 0; i < b.N; i++ {
				wc := NewWorkcell(WorkcellOptions{Seed: 2023 + int64(i)})
				engine, _ := NewEngine(wc.Registry, wc)
				sol, err := NewSolver("genetic", 2023+int64(i), DefaultTarget)
				if err != nil {
					b.Fatal(err)
				}
				app, err := NewApp(Config{
					Experiment:   "bench_deck",
					BatchSize:    4,
					TotalSamples: n,
					DeckMode:     deck,
				}, engine, sol)
				if err != nil {
					b.Fatal(err)
				}
				res, err := app.Run(nil)
				if err != nil {
					b.Fatal(err)
				}
				vmin = res.Elapsed().Minutes()
			}
			b.ReportMetric(vmin, "vmin")
		})
	}
}

// runWithSolver executes a reduced experiment with an explicitly
// constructed solver (for ablations over solver options the facade does not
// expose).
func runWithSolver(b *testing.B, seed int64, n, batch int, sol Solver) float64 {
	b.Helper()
	wc := NewWorkcell(WorkcellOptions{Seed: seed})
	engine, _ := NewEngine(wc.Registry, wc)
	app, err := NewApp(Config{
		Experiment:   "bench_ablation",
		BatchSize:    batch,
		TotalSamples: n,
	}, engine, sol)
	if err != nil {
		b.Fatal(err)
	}
	res, err := app.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace[len(res.Trace)-1].Best
}

// BenchmarkAblationGAMutation sweeps the GA's mutation scale, the design
// knob behind the paper's "randomly shifting its ratios" operator.
func BenchmarkAblationGAMutation(b *testing.B) {
	n := benchSamples(48)
	for _, scale := range []float64{0.1, 0.35, 0.8} {
		b.Run(fmt.Sprintf("scale=%.2f", scale), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				sol := ga.New(sim.NewRNG(31+int64(i)), ga.Options{RandomInit: true, MutationScale: scale})
				final = runWithSolver(b, 31+int64(i), n, 8, sol)
			}
			b.ReportMetric(final, "score")
		})
	}
}

// BenchmarkAblationGradeMetric compares solver grading by Euclidean RGB
// (our default) against ΔE2000 grading (the paper's GA grades by "delta e
// distance") with the trace always measured in Euclidean RGB. For near-gray
// targets the two are nearly interchangeable.
func BenchmarkAblationGradeMetric(b *testing.B) {
	n := benchSamples(48)
	for _, grade := range []Metric{MetricEuclideanRGB, MetricDeltaE2000} {
		b.Run(grade.String(), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, _, err := Run(Config{
					Experiment:     "bench_grade",
					BatchSize:      8,
					TotalSamples:   n,
					GradeMetric:    grade,
					GradeMetricSet: true,
				}, RunOptions{Seed: 41 + int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				final = res.Trace[len(res.Trace)-1].Best
			}
			b.ReportMetric(final, "score")
		})
	}
}

// BenchmarkAblationBayesWarmup isolates the Bayesian solver's warmup length
// (random samples before the surrogate takes over).
func BenchmarkAblationBayesWarmup(b *testing.B) {
	n := benchSamples(48)
	for _, warmup := range []int{8, 24} {
		b.Run(fmt.Sprintf("warmup=%d", warmup), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				sol := bayes.New(sim.NewRNG(37+int64(i)), bayes.Options{Warmup: warmup})
				final = runWithSolver(b, 37+int64(i), n, 8, sol)
			}
			b.ReportMetric(final, "score")
		})
	}
}
